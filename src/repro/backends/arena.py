"""Shared contiguous posting arena for the NumPy backend.

Instead of one set of growable arrays *per posting list*, the whole
inverted index stores its postings in a single :class:`PostingArena`: four
parallel ``int64``/``float64`` arrays (interned vector slot, value ``x_j``,
prefix magnitude ``‖x'_j‖``, timestamp ``t(x)``) shared across every
dimension, plus a per-dimension *extent table* — each
:class:`ArenaPostingList` handle records the chunk it owns inside the
arena (``start``/``capacity``), the live region within that chunk
(``head``/``size``) and the lazy-expiry state (``dirty`` counter,
high-water ``expired_cutoff``, min/max live timestamps).

The layout exists for the fused multi-term scan kernels
(:meth:`repro.backends.numpy_backend.NumpyKernel.scan_query_stream` and
friends): because every dimension's postings live in the *same* arrays, a
whole query's candidate-generation pass gathers the matched dimensions'
live ranges with a handful of fancy-index reads instead of one
Python→NumPy round trip per query term.

The arena's backing buffers come from a pluggable **allocator** — a
``(length, dtype) -> np.ndarray`` factory.  The default allocates private
heap arrays; the sharded join's worker processes (:mod:`repro.shard`)
supply a ``multiprocessing.shared_memory``-backed allocator so each
shard-local arena lives in a shared segment.

Memory management
-----------------
* **Chunks** grow by doubling: when a list's region hits its chunk
  capacity it either slides back over its dropped head (when at most half
  the chunk is occupied) or relocates to a fresh, twice-as-large chunk at
  the arena tail, abandoning the old chunk as a hole.
* **Dead space** — abandoned chunks, dropped head cells and released tail
  capacity — is tracked in :attr:`PostingArena.dead_entries`.  Whenever the
  dead space exceeds the live postings the whole arena is compacted in one
  pass (amortised O(1) per dead entry); the compute kernel's per-query
  maintenance budget can additionally pay for an early compaction of a
  lightly fragmented arena (:meth:`PostingArena.compact_if_affordable`).
* **Compaction** rewrites every live list back to back (dropping lazily
  expired postings for free), right-sizing each chunk to the smallest
  power of two holding twice its live postings.

Safety under scanning: arena growth and whole-arena compaction allocate
*fresh* arrays, so array views or fancy-index gathers taken earlier keep
reading the old buffers consistently.  The only in-place rewrites (chunk
slides during appends, per-list :meth:`ArenaPostingList.compress`) happen
at points where the scan kernels hold no views, which
``tests/test_arena.py`` pins down.
"""

from __future__ import annotations

import math
import weakref
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.indexes.posting import PostingEntry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.numpy_backend import NumpyKernel

__all__ = ["PostingArena", "ArenaPostingList", "ArenaAllocator",
           "SLOT_DTYPE", "VALUE_DTYPE"]

#: Dtypes of the arena's parallel arrays: ``SLOT_DTYPE`` for the interned
#: vector slots, ``VALUE_DTYPE`` for values, prefix magnitudes and
#: timestamps.  The compiled tier (:mod:`repro.backends.kernels`) specialises
#: its JIT signatures against these exact dtypes — its warm-up compiles with
#: them, so an arena allocated with anything else would trigger a fresh
#: compilation (or a TypingError) mid-scan.
SLOT_DTYPE = np.int64
VALUE_DTYPE = np.float64

#: Smallest chunk allocated to a non-empty posting list (and the reported
#: capacity of a list that has never stored a posting).
_MIN_CAPACITY = 8
#: Initial capacity of the arena's backing arrays.
_INITIAL_ARENA = 1024
_INF = math.inf


def _next_pow2(value: int) -> int:
    power = 1
    while power < value:
        power *= 2
    return power


def _heap_alloc(length: int, dtype) -> np.ndarray:
    """Default arena allocator: a private, uninitialised heap array."""
    return np.empty(length, dtype=dtype)


class ArenaAllocator:
    """Interface of a caller-provided arena buffer factory.

    Implementations are callables ``(length, dtype) -> np.ndarray`` that
    return a writable one-dimensional array of exactly ``length`` elements.
    The arena never frees buffers explicitly — it simply drops its
    references on growth/compaction — so allocators owning external
    resources (shared-memory segments) should tie their release to the
    array's lifetime (see :class:`repro.shard.shm.SharedMemoryAllocator`).
    """

    def __call__(self, length: int, dtype) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError


class PostingArena:
    """The shared posting store: four parallel arrays plus chunk accounting.

    One arena per :class:`~repro.backends.numpy_backend.NumpyKernel` (and
    therefore per index).  Lists are created with :meth:`new_list`; the
    arena keeps weak references so handles dropped by the index (e.g. via
    ``InvertedIndex.clear``) are reclaimed at the next compaction.
    """

    __slots__ = ("kernel", "allocator", "slots", "values", "pnorms", "ts",
                 "tail", "live_entries", "dead_entries", "_lists",
                 "compactions")

    def __init__(self, kernel: "NumpyKernel",
                 allocator: "ArenaAllocator | None" = None) -> None:
        # Reference cycle with the kernel (kernel._arena → arena.kernel);
        # collected by the cycle GC.  The strong reference keeps detached
        # posting lists iterable (they translate slots via the kernel).
        self.kernel = kernel
        #: Backing-buffer factory ``(length, dtype) -> np.ndarray``.  The
        #: default allocates private heap arrays; the sharded worker
        #: processes pass :class:`repro.shard.shm.SharedMemoryAllocator`
        #: so their arenas live in ``multiprocessing.shared_memory``
        #: segments.  Every buffer the arena ever uses — the initial
        #: arrays, growth reallocations and compaction targets — comes
        #: from this factory, so an arena is shared-memory backed for its
        #: whole lifetime, not only at construction.
        self.allocator = allocator if allocator is not None else _heap_alloc
        self.slots = self.allocator(_INITIAL_ARENA, SLOT_DTYPE)
        self.values = self.allocator(_INITIAL_ARENA, VALUE_DTYPE)
        self.pnorms = self.allocator(_INITIAL_ARENA, VALUE_DTYPE)
        self.ts = self.allocator(_INITIAL_ARENA, VALUE_DTYPE)
        #: Next free offset; everything at or beyond it is unallocated.
        self.tail = 0
        #: Physically stored postings across all live lists (incl. dirty).
        self.live_entries = 0
        #: Allocated-but-unreachable cells: abandoned chunks, dropped head
        #: cells, released tail capacity.
        self.dead_entries = 0
        self._lists: list[weakref.ref[ArenaPostingList]] = []
        #: Number of whole-arena compactions performed (observability).
        self.compactions = 0

    @property
    def capacity(self) -> int:
        """Allocated length of the backing arrays."""
        return len(self.slots)

    def new_list(self) -> "ArenaPostingList":
        posting_list = ArenaPostingList(self)
        self._lists.append(weakref.ref(posting_list))
        return posting_list

    # -- allocation ----------------------------------------------------------

    def _alloc_chunk(self, length: int) -> int:
        """Reserve ``length`` cells at the tail; returns the chunk start."""
        if self.tail + length > len(self.slots):
            self._grow(self.tail + length)
        start = self.tail
        self.tail += length
        return start

    def _grow(self, needed: int) -> None:
        capacity = _next_pow2(max(needed, _INITIAL_ARENA))
        for name in ("slots", "values", "pnorms", "ts"):
            old = getattr(self, name)
            fresh = self.allocator(capacity, old.dtype)
            fresh[:self.tail] = old[:self.tail]
            setattr(self, name, fresh)

    # -- compaction ----------------------------------------------------------

    def maybe_compact(self) -> bool:
        """Compact when the dead space exceeds the live postings."""
        if self.dead_entries > self.live_entries:
            self.compact()
            return True
        return False

    def compact_if_affordable(self, budget: int) -> int:
        """Early compaction paid for by the per-query maintenance budget.

        A mandatory compaction (dead > live) is always taken and costs no
        budget — it is already amortised.  Otherwise a *meaningfully*
        fragmented arena (at least a quarter of the live volume wasted;
        reclaiming single cells every query would just churn) is
        rewritten early when the budget covers the live postings to move.
        Returns the budget consumed.
        """
        if self.dead_entries > self.live_entries:
            self.compact()
            return 0
        if (self.dead_entries * 4 >= self.live_entries > 0
                and self.live_entries <= budget):
            cost = self.live_entries
            self.compact()
            return cost
        return 0

    def compact(self) -> None:
        """Rewrite every live list back to back, dropping dead space.

        Lazily expired (dirty) postings are dropped for free — their
        removal was already reported by the scans.  Fresh arrays are
        allocated, so gathers taken before the compaction stay valid.
        """
        lists = [ref() for ref in self._lists]
        lists = [pl for pl in lists if pl is not None]
        self._lists = [weakref.ref(pl) for pl in lists]

        plans: list[tuple[ArenaPostingList, np.ndarray | slice | None, int]] = []
        total = 0
        for plist in lists:
            lo = plist._start + plist._head
            hi = lo + plist._size
            if plist._size == 0:
                plans.append((plist, None, 0))
                continue
            if plist._dirty:
                keep = self.ts[lo:hi] >= plist._expired_cutoff
                kept = int(np.count_nonzero(keep))
                plans.append((plist, keep, kept))
            else:
                kept = plist._size
                plans.append((plist, slice(lo, hi), kept))
            total += _next_pow2(max(2 * kept, _MIN_CAPACITY)) if kept else 0

        capacity = _next_pow2(max(total, _INITIAL_ARENA))
        fresh = {name: self.allocator(capacity, getattr(self, name).dtype)
                 for name in ("slots", "values", "pnorms", "ts")}
        cursor = 0
        live = 0
        for plist, selector, kept in plans:
            if kept == 0:
                plist._start = 0
                plist._cap = 0
                plist._head = 0
                plist._size = 0
                plist._dirty = 0
                plist._min_ts = _INF
                plist._max_ts = -_INF
                continue
            chunk = _next_pow2(max(2 * kept, _MIN_CAPACITY))
            lo = plist._start + plist._head
            hi = lo + plist._size
            if isinstance(selector, slice):
                for name, buf in fresh.items():
                    buf[cursor:cursor + kept] = getattr(self, name)[selector]
            else:
                for name, buf in fresh.items():
                    buf[cursor:cursor + kept] = getattr(self, name)[lo:hi][selector]
                kept_ts = fresh["ts"][cursor:cursor + kept]
                plist._min_ts = float(kept_ts.min())
                plist._max_ts = float(kept_ts.max())
            plist._start = cursor
            plist._cap = chunk
            plist._head = 0
            plist._size = kept
            plist._dirty = 0
            cursor += chunk
            live += kept
        for name, buf in fresh.items():
            setattr(self, name, buf)
        self.tail = cursor
        self.live_entries = live
        self.dead_entries = 0
        self.compactions += 1


class ArenaPostingList:
    """A posting list ``I_j`` as an extent (chunk) of the shared arena.

    Implements the interface of
    :class:`~repro.indexes.posting.PostingList` (append / iterate /
    truncate / compact), so index maintenance, checkpointing and the
    per-term scan kernels work unchanged, while the fused scan kernels
    read the extent fields directly and gather from the arena arrays.

    The live region is ``arena[start+head : start+head+size]``.  Dropped
    head cells and abandoned chunks are accounted as arena dead space;
    the arena compacts itself when dead space exceeds live postings.

    Lazy expiry works exactly as in the previous per-list layout: scans
    mask postings older than :attr:`expired_cutoff` on the fly, report
    them removed exactly once (the ``dirty`` counter), and the physical
    rewrite is deferred to :meth:`compress` or an arena compaction.
    """

    __slots__ = ("_arena", "_start", "_cap", "_head", "_size", "_dirty",
                 "_expired_cutoff", "_min_ts", "_max_ts", "__weakref__")

    def __init__(self, arena: PostingArena) -> None:
        self._arena = arena
        self._start = 0
        self._cap = 0
        self._head = 0
        self._size = 0
        self._dirty = 0
        self._expired_cutoff = -_INF
        self._min_ts = _INF
        self._max_ts = -_INF

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        """Number of logically live postings (physical minus lazily expired)."""
        return self._size - self._dirty

    def __bool__(self) -> bool:
        return self._size > self._dirty

    @property
    def capacity(self) -> int:
        """Chunk capacity (or the minimum a first append would allocate)."""
        return self._cap if self._cap else _MIN_CAPACITY

    @property
    def physical_size(self) -> int:
        """Number of physically stored postings, including lazily expired ones."""
        return self._size

    @property
    def dirty(self) -> int:
        """Number of lazily expired postings awaiting physical compaction."""
        return self._dirty

    @property
    def expired_cutoff(self) -> float:
        """Highest expiry cutoff applied so far (lazily or physically)."""
        return self._expired_cutoff

    @property
    def min_live_timestamp(self) -> float:
        """Smallest timestamp among the live postings (``+inf`` when empty)."""
        return self._min_ts

    @property
    def max_live_timestamp(self) -> float:
        """Largest timestamp among the live postings (``-inf`` when empty)."""
        return self._max_ts

    @property
    def region(self) -> tuple[int, int]:
        """``(lo, hi)`` bounds of the physical region inside the arena."""
        lo = self._start + self._head
        return lo, lo + self._size

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Views of the *physical* live region:
        ``(slots, values, prefix_norms, timestamps)``.

        When :attr:`dirty` is non-zero the views still contain lazily
        expired postings (``timestamp < expired_cutoff``); the scan
        kernels mask them out.  The views read the arena's current
        buffers — they stay consistent across arena growth/compaction
        (which allocate fresh arrays) but not across in-place mutation of
        this list (appends, compress).
        """
        arena = self._arena
        lo, hi = self.region
        return (arena.slots[lo:hi], arena.values[lo:hi],
                arena.pnorms[lo:hi], arena.ts[lo:hi])

    def __iter__(self) -> Iterator[PostingEntry]:
        """Iterate the live postings oldest → newest as :class:`PostingEntry`."""
        return self._iterate(newest_first=False)

    def iter_newest_first(self) -> Iterator[PostingEntry]:
        """Iterate the live postings newest → oldest (backward CG scan)."""
        return self._iterate(newest_first=True)

    def _iterate(self, *, newest_first: bool) -> Iterator[PostingEntry]:
        arena = self._arena
        ids = arena.kernel._slot_ids
        cutoff = self._expired_cutoff if self._dirty else -_INF
        lo, hi = self.region
        offsets = range(hi - 1, lo - 1, -1) if newest_first else range(lo, hi)
        for offset in offsets:
            timestamp = float(arena.ts[offset])
            if timestamp < cutoff:
                continue
            yield PostingEntry(
                vector_id=int(ids[arena.slots[offset]]),
                value=float(arena.values[offset]),
                prefix_norm=float(arena.pnorms[offset]),
                timestamp=timestamp,
            )

    def to_list(self) -> list[PostingEntry]:
        """Copy of the live postings from oldest to newest."""
        return list(self)

    # -- mutation ------------------------------------------------------------

    def append(self, entry: PostingEntry) -> None:
        """Append a posting at the tail."""
        self._append_fast(self._arena.kernel._intern(entry.vector_id),
                          entry.value, entry.prefix_norm, entry.timestamp)

    def _append_fast(self, slot: int, value: float, prefix_norm: float,
                     timestamp: float) -> None:
        """Field-level append used by the kernel's bulk indexing path."""
        arena = self._arena
        position = self._reserve_tail()
        arena.slots[position] = slot
        arena.values[position] = value
        arena.pnorms[position] = prefix_norm
        arena.ts[position] = timestamp
        if timestamp < self._min_ts:
            self._min_ts = timestamp
        if timestamp > self._max_ts:
            self._max_ts = timestamp

    def _reserve_tail(self) -> int:
        """Make room for one posting; returns its arena offset.

        The returned offset stays valid across subsequent reservations of
        *other* lists in the same bulk append (arena growth reallocates,
        relocation moves only the relocating chunk), which is what the
        kernel's vectorised ``index_vector_postings`` relies on.
        """
        arena = self._arena
        if self._head + self._size == self._cap:
            if self._head and self._size * 2 <= self._cap:
                self._slide()
            else:
                self._relocate(max(2 * self._cap, _MIN_CAPACITY))
        position = self._start + self._head + self._size
        self._size += 1
        arena.live_entries += 1
        return position

    def note_appended(self, count: int, min_ts: float, max_ts: float) -> None:
        """Record ``count`` postings written directly after reservation."""
        if min_ts < self._min_ts:
            self._min_ts = min_ts
        if max_ts > self._max_ts:
            self._max_ts = max_ts

    def _slide(self) -> None:
        """Move the region back over the dropped head (in-place rewrite)."""
        arena = self._arena
        lo, hi = self.region
        start = self._start
        for buf in (arena.slots, arena.values, arena.pnorms, arena.ts):
            buf[start:start + self._size] = buf[lo:hi].copy()
        arena.dead_entries -= self._head
        self._head = 0

    def _relocate(self, new_cap: int) -> None:
        """Move the region to a fresh chunk at the arena tail."""
        arena = self._arena
        lo, hi = self.region
        # The old arrays are captured before _alloc_chunk: growth replaces
        # the arena arrays, and the region must be copied out of the old
        # buffers it lives in.
        old = [arena.slots, arena.values, arena.pnorms, arena.ts]
        start = arena._alloc_chunk(new_cap)
        for source, name in zip(old, ("slots", "values", "pnorms", "ts")):
            getattr(arena, name)[start:start + self._size] = source[lo:hi]
        arena.dead_entries += self._cap - self._head
        self._start = start
        self._cap = new_cap
        self._head = 0

    def drop_oldest(self, count: int) -> int:
        """Remove up to ``count`` postings from the head; return the number dropped.

        Only valid on time-ordered lists, which never carry lazily expired
        postings (their head truncation is O(1) plus amortised arena
        maintenance).
        """
        if count <= 0:
            return 0
        arena = self._arena
        dropped = min(count, self._size)
        self._head += dropped
        self._size -= dropped
        arena.live_entries -= dropped
        arena.dead_entries += dropped
        if self._size:
            self._min_ts = float(arena.ts[self._start + self._head])
        else:
            self._min_ts = _INF
            self._max_ts = -_INF
        arena.maybe_compact()
        return dropped

    def keep_newest(self, count: int) -> int:
        """Keep only the ``count`` newest postings (backward-scan truncation)."""
        return self.drop_oldest(self._size - max(count, 0))

    def truncate_older_than(self, cutoff: float) -> int:
        """Drop the head postings with ``timestamp < cutoff`` (time-ordered lists)."""
        lo, hi = self.region
        live_ts = self._arena.ts[lo:hi]
        return self.drop_oldest(int(np.searchsorted(live_ts, cutoff, side="left")))

    def note_lazy_expiry(self, cutoff: float, dirty: int,
                         min_live: float, max_live: float) -> None:
        """Record a deferred expiry pass performed by a scan kernel.

        ``dirty`` postings of the physical region fall below ``cutoff`` and
        have been reported as removed; ``min_live``/``max_live`` are the
        extreme timestamps among the survivors (``±inf`` when none survive).
        """
        self._expired_cutoff = cutoff
        self._dirty = dirty
        self._min_ts = min_live
        self._max_ts = max_live

    def compress(self, keep_mask: np.ndarray) -> int:
        """Keep only the physical postings selected by ``keep_mask``.

        Returns the number of *logical* removals — postings that were live
        before the call and are gone after it; lazily expired postings
        dropped here were already reported by :meth:`note_lazy_expiry`.
        """
        arena = self._arena
        live_before = self._size - self._dirty
        kept = int(np.count_nonzero(keep_mask))
        if kept == self._size:
            return 0
        lo, hi = self.region
        start = self._start
        for buf in (arena.slots, arena.values, arena.pnorms, arena.ts):
            buf[start:start + kept] = buf[lo:hi][keep_mask]
        arena.dead_entries -= self._head
        arena.live_entries -= self._size - kept
        self._head = 0
        self._size = kept
        if kept:
            kept_ts = arena.ts[start:start + kept]
            self._min_ts = float(kept_ts.min())
            self._max_ts = float(kept_ts.max())
            self._dirty = (int(np.count_nonzero(kept_ts < self._expired_cutoff))
                           if self._min_ts < self._expired_cutoff else 0)
        else:
            self._min_ts = _INF
            self._max_ts = -_INF
            self._dirty = 0
        if self._cap > _MIN_CAPACITY and kept * 4 < self._cap:
            released = _next_pow2(max(2 * kept, _MIN_CAPACITY))
            arena.dead_entries += self._cap - released
            self._cap = released
        arena.maybe_compact()
        return live_before - (self._size - self._dirty)

    def compact(self, cutoff: float) -> int:
        """Remove every posting with ``timestamp < cutoff`` regardless of order.

        Forces a physical rewrite (used by explicit maintenance such as
        :meth:`~repro.indexes.posting.InvertedIndex.prune_older_than`);
        returns the number of logical removals.
        """
        if cutoff > self._expired_cutoff:
            self._expired_cutoff = cutoff
        if self._size == 0:
            return 0
        lo, hi = self.region
        keep_mask = self._arena.ts[lo:hi] >= self._expired_cutoff
        return self.compress(keep_mask)

    def replace_all_entries(self, entries: list[PostingEntry]) -> None:
        """Replace the whole content with ``entries`` (oldest first)."""
        arena = self._arena
        arena.dead_entries += self._cap - self._head
        arena.live_entries -= self._size
        self._start = 0
        self._cap = 0
        self._head = 0
        self._size = 0
        self._dirty = 0
        self._expired_cutoff = -_INF
        self._min_ts = _INF
        self._max_ts = -_INF
        if entries:
            self._relocate(_next_pow2(max(len(entries), _MIN_CAPACITY)))
            for entry in entries:
                self.append(entry)
        arena.maybe_compact()
