"""Approximate prefilter tier: sketch signatures and banding-based rejection.

The exact engine verifies every candidate that survives the prefix-filter
bounds.  The *approximate* tier (opt-in via ``JoinParameters(approx=...)``,
``create_join(approx=...)``, ``sssj run --approx ...`` or the
``SSSJ_APPROX`` environment variable) inserts one more filter between
candidate generation and verification: every indexed vector carries a
compact **sketch signature**, and a candidate whose signature shares no
band with the query's is rejected before it can start accumulating.

Three signature families are provided:

* ``minhash`` (the default) — classic MinHash over the vector's
  *dimension set* (weights ignored): lane ``i`` holds the minimum of a
  lane-salted 64-bit hash over the dimensions.  Two vectors agree on a
  lane with probability equal to their Jaccard similarity, so a band of
  ``rows`` consecutive lanes matches with probability ``J^rows`` and the
  banded OR over ``bands`` bands yields the usual LSH S-curve.
* ``wminhash`` — weighted MinHash by consistent sampling: in each lane
  every dimension draws the *same* lane-salted 64-bit uniform in both
  vectors and races with key ``uniform / weight²``; the lane value is
  the dim-hash of the winning dimension.  Two vectors agree on a lane
  with (approximately) the generalized Jaccard similarity of their
  squared-weight distributions, which for unit-norm vectors is a much
  sharper function of the dot product than the set-Jaccard ``minhash``
  uses — this is the family the benchmark recall gate runs.
* ``simhash`` — random-hyperplane signs: each lane packs ``4`` sign bits
  of Rademacher projections of the weighted vector, so lane agreement
  tracks the angular (cosine) similarity.  Included as the
  cosine-sensitive alternative; at moderate thresholds its S-curve is
  flatter than MinHash's, which is why MinHash is the default.

All three are built on the splitmix64 mixer, evaluated in exact 64-bit wrap
arithmetic, so a signature is a pure function of ``(vector dims/values,
config)`` — the reference and NumPy backends share one
:class:`SignatureScheme` implementation and therefore take bit-identical
keep/reject decisions, which is what makes the cross-backend parity
tests of the approximate tier possible.

The filter is **one-sided**: a rejected candidate is never verified (this
is where recall can be lost), but every *surviving* pair still goes
through the exact verification bounds and dot products — an emitted pair
is always a true pair.  With ``approx=None`` (the default) nothing in the
engine changes and output stays bitwise identical to the exact engine
(pinned by ``tests/test_approx.py``).
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass
from typing import Any

from repro.core.vector import SparseVector
from repro.exceptions import InvalidParameterError

__all__ = [
    "APPROX_METHODS",
    "APPROX_ENV_VAR",
    "ApproxConfig",
    "SignatureScheme",
    "parse_approx",
    "approx_from_env",
]

#: Supported sketch families.
APPROX_METHODS = ("minhash", "wminhash", "simhash")

#: Environment variable consulted by the CLI when ``--approx`` is absent.
APPROX_ENV_VAR = "SSSJ_APPROX"

_DEFAULT_BANDS = 16
_DEFAULT_ROWS = 2
_DEFAULT_SEED = 0x53535341  # "SSSA"

_MASK64 = (1 << 64) - 1
#: Sign bits packed per simhash lane (lane match prob = p_bit ** this).
_SIMHASH_BITS_PER_LANE = 4


def _splitmix64(value: int) -> int:
    """One splitmix64 mixing step in exact 64-bit wrap arithmetic."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


@dataclass(frozen=True)
class ApproxConfig:
    """One approximate-tier configuration (validated, checkpoint-friendly).

    ``bands × rows`` consecutive signature lanes form the banded-LSH
    layout; a candidate passes the prefilter when at least one band of
    its signature equals the query's.  The canonical string form
    (:meth:`spec`) is what travels through checkpoints, session
    envelopes and the CLI.
    """

    method: str = "minhash"
    bands: int = _DEFAULT_BANDS
    rows: int = _DEFAULT_ROWS
    seed: int = _DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.method not in APPROX_METHODS:
            raise InvalidParameterError(
                f"unknown approx method {self.method!r}; "
                f"expected one of {APPROX_METHODS}")
        if self.bands < 1:
            raise InvalidParameterError(
                f"approx bands must be >= 1, got {self.bands}")
        if self.rows < 1:
            raise InvalidParameterError(
                f"approx rows must be >= 1, got {self.rows}")
        if self.bands * self.rows > 256:
            raise InvalidParameterError(
                f"signature too long: bands × rows = "
                f"{self.bands * self.rows} lanes (max 256); "
                "reduce --approx-bands or --approx-rows")

    @property
    def signature_length(self) -> int:
        """Number of 64-bit lanes in one signature (``bands × rows``)."""
        return self.bands * self.rows

    def spec(self) -> str:
        """Canonical string form, accepted back by :func:`parse_approx`."""
        text = f"{self.method}:{self.bands}x{self.rows}"
        if self.seed != _DEFAULT_SEED:
            text += f":{self.seed}"
        return text

    def as_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ApproxConfig":
        fields = {name for name in cls.__dataclass_fields__}  # noqa: C416
        return cls(**{key: value for key, value in payload.items()
                      if key in fields})


def parse_approx(value: "str | ApproxConfig | None", *,
                 bands: int | None = None,
                 rows: int | None = None,
                 seed: int | None = None) -> ApproxConfig | None:
    """Normalise an approx specification into an :class:`ApproxConfig`.

    Accepts ``None`` (approximation disabled), an existing config, or a
    spec string ``"method[:BANDSxROWS[:SEED]]"`` (e.g. ``"minhash"``,
    ``"minhash:16x2"``, ``"simhash:8x4:7"``).  The keyword overrides let
    the CLI's separate ``--approx-bands`` / ``--approx-rows`` flags
    refine a bare method name.
    """
    if value is None:
        if bands is not None or rows is not None:
            raise InvalidParameterError(
                "--approx-bands/--approx-rows require --approx "
                "(or SSSJ_APPROX) to select a sketch method")
        return None
    if isinstance(value, ApproxConfig):
        config = value
    else:
        text = str(value).strip().lower()
        if not text:
            return None
        parts = text.split(":")
        if len(parts) > 3:
            raise InvalidParameterError(
                f"cannot parse approx spec {value!r}; expected "
                "'method[:BANDSxROWS[:SEED]]'")
        kwargs: dict[str, Any] = {"method": parts[0]}
        if len(parts) >= 2 and parts[1]:
            geometry = parts[1].split("x")
            if len(geometry) != 2:
                raise InvalidParameterError(
                    f"cannot parse approx geometry {parts[1]!r} in {value!r}; "
                    "expected 'BANDSxROWS' (e.g. '16x2')")
            try:
                kwargs["bands"] = int(geometry[0])
                kwargs["rows"] = int(geometry[1])
            except ValueError as error:
                raise InvalidParameterError(
                    f"cannot parse approx geometry {parts[1]!r} in "
                    f"{value!r}: {error}") from None
        if len(parts) == 3 and parts[2]:
            try:
                kwargs["seed"] = int(parts[2])
            except ValueError as error:
                raise InvalidParameterError(
                    f"cannot parse approx seed {parts[2]!r} in "
                    f"{value!r}: {error}") from None
        config = ApproxConfig(**kwargs)
    overrides: dict[str, Any] = {}
    if bands is not None:
        overrides["bands"] = bands
    if rows is not None:
        overrides["rows"] = rows
    if seed is not None:
        overrides["seed"] = seed
    if overrides:
        config = ApproxConfig(**{**config.as_dict(), **overrides})
    return config


def approx_from_env(environ: "dict[str, str] | None" = None,
                    ) -> ApproxConfig | None:
    """The :data:`APPROX_ENV_VAR` configuration, or ``None`` when unset."""
    env = os.environ if environ is None else environ
    raw = env.get(APPROX_ENV_VAR, "").strip()
    return parse_approx(raw) if raw else None


class SignatureScheme:
    """Computes signatures and takes the banded keep/reject decisions.

    One instance is shared per kernel; signatures are tuples of
    ``signature_length`` Python ints (64-bit values), deterministic in
    ``(vector, config)``, so both backends — and a checkpoint-restored
    kernel replaying ``note_vector_indexed`` — regenerate identical
    signatures and identical decisions.
    """

    __slots__ = ("config", "_lane_salts", "_np", "_salts_np")

    def __init__(self, config: ApproxConfig) -> None:
        self.config = config
        base = _splitmix64(config.seed & _MASK64)
        self._lane_salts = tuple(
            _splitmix64(base + lane * 0x9E3779B97F4A7C15)
            for lane in range(config.signature_length))
        try:  # vectorised signature path when NumPy is importable
            import numpy
            self._np = numpy
            self._salts_np = numpy.asarray(self._lane_salts,
                                           dtype=numpy.uint64)
        except ImportError:  # pragma: no cover - environment dependent
            self._np = None
            self._salts_np = None

    # -- signature computation -------------------------------------------------

    def signature(self, vector: SparseVector) -> tuple[int, ...]:
        """The vector's sketch signature (a tuple of 64-bit lane values)."""
        if self.config.method == "minhash":
            return self._minhash(vector)
        if self.config.method == "wminhash":
            return self._wminhash(vector)
        return self._simhash(vector)

    def _minhash(self, vector: SparseVector) -> tuple[int, ...]:
        np = self._np
        if np is not None:
            dims = np.asarray(vector.dims, dtype=np.uint64)
            salts = self._salts_np
            # splitmix64 over (dim-hash ^ lane-salt) for every lane at once.
            with np.errstate(over="ignore"):
                mixed = self._splitmix64_np(np, dims)
                lanes = self._splitmix64_np(
                    np, mixed[:, None] ^ salts[None, :])
            return tuple(lanes.min(axis=0).tolist())
        dim_hashes = [_splitmix64(dim & _MASK64) for dim in vector.dims]
        return tuple(
            min(_splitmix64(mixed ^ salt) for mixed in dim_hashes)
            for salt in self._lane_salts)

    def _wminhash(self, vector: SparseVector) -> tuple[int, ...]:
        # Consistent weighted sampling: dimension d races in lane i with
        # key hash(d, i) / w_d² — the *same* 64-bit "uniform" for every
        # vector containing d — and the lane records the dim-hash of the
        # winner.  P(two vectors pick the same winner) tracks the
        # generalized Jaccard of the squared-weight distributions.  Both
        # arithmetic paths below round identically (IEEE uint64→float64
        # casts, float64 division, first-minimum tiebreak), so signatures
        # stay bit-identical across backends.
        np = self._np
        if np is not None:
            dims = np.asarray(vector.dims, dtype=np.uint64)
            weights = np.asarray(vector.values, dtype=np.float64)
            weights = weights * weights
            salts = self._salts_np
            with np.errstate(over="ignore"):
                mixed = self._splitmix64_np(np, dims)
                lane_hash = self._splitmix64_np(
                    np, mixed[:, None] ^ salts[None, :])  # (nnz, L)
            with np.errstate(divide="ignore", invalid="ignore",
                             over="ignore"):
                keys = lane_hash.astype(np.float64) / weights[:, None]
            winners = keys.argmin(axis=0)
            return tuple(mixed[winners].tolist())
        dim_hashes = [_splitmix64(dim & _MASK64) for dim in vector.dims]
        squared = [value * value for value in vector.values]
        signature = []
        for salt in self._lane_salts:
            best_hash = 0
            best_key = None
            for mixed, weight in zip(dim_hashes, squared):
                try:
                    key = float(_splitmix64(mixed ^ salt)) / weight
                except ZeroDivisionError:
                    key = float("inf")
                if best_key is None or key < best_key:
                    best_key = key
                    best_hash = mixed
            signature.append(best_hash)
        return tuple(signature)

    def _simhash(self, vector: SparseVector) -> tuple[int, ...]:
        np = self._np
        bits = _SIMHASH_BITS_PER_LANE
        if np is not None:
            dims = np.asarray(vector.dims, dtype=np.uint64)
            values = np.asarray(vector.values, dtype=np.float64)
            salts = self._salts_np
            with np.errstate(over="ignore"):
                mixed = self._splitmix64_np(np, dims)
                lane_hash = self._splitmix64_np(
                    np, mixed[:, None] ^ salts[None, :])  # (nnz, L)
            lanes = []
            for bit in range(bits):
                # Rademacher sign from one hash bit per (dim, lane).
                signs = np.where(
                    (lane_hash >> np.uint64(bit)) & np.uint64(1), 1.0, -1.0)
                projections = (values[:, None] * signs).sum(axis=0)
                lanes.append((projections >= 0.0).astype(np.uint64)
                             << np.uint64(bit))
            packed = lanes[0]
            for lane in lanes[1:]:
                packed = packed | lane
            return tuple(packed.tolist())
        signature = []
        pairs = list(zip(vector.dims, vector.values))
        for salt in self._lane_salts:
            packed = 0
            hashes = [(_splitmix64(_splitmix64(dim & _MASK64) ^ salt), value)
                      for dim, value in pairs]
            for bit in range(bits):
                projection = sum(
                    value if (lane_hash >> bit) & 1 else -value
                    for lane_hash, value in hashes)
                if projection >= 0.0:
                    packed |= 1 << bit
            signature.append(packed)
        return tuple(signature)

    @staticmethod
    def _splitmix64_np(np, value):
        value = (value + np.uint64(0x9E3779B97F4A7C15))
        value = (value ^ (value >> np.uint64(30))) \
            * np.uint64(0xBF58476D1CE4E5B9)
        value = (value ^ (value >> np.uint64(27))) \
            * np.uint64(0x94D049BB133111EB)
        return value ^ (value >> np.uint64(31))

    # -- banded decisions ------------------------------------------------------

    def band_keys(self, signature: tuple[int, ...]) -> tuple[tuple[int, ...], ...]:
        """The signature's band keys: ``rows`` consecutive lanes per band."""
        rows = self.config.rows
        return tuple(signature[start:start + rows]
                     for start in range(0, len(signature), rows))

    def matches(self, query_signature: tuple[int, ...],
                candidate_signature: tuple[int, ...]) -> bool:
        """True when at least one band agrees (the candidate survives)."""
        rows = self.config.rows
        for start in range(0, len(query_signature), rows):
            end = start + rows
            if query_signature[start:end] == candidate_signature[start:end]:
                return True
        return False

    def band_hash_keys(self, signature: tuple[int, ...]) -> tuple[int, ...]:
        """One folded 64-bit key per band (splitmix64 over its lanes).

        Key equality is band equality up to splitmix collisions (~2⁻⁶⁴ per
        comparison); both engine backends take their keep/reject decisions
        on these keys, so even a collision cannot break cross-backend
        parity — the two data paths agree bit for bit either way.
        """
        if self._np is not None:
            return tuple(self.band_key_array(signature).tolist())
        rows = self.config.rows
        keys = []
        for start in range(0, len(signature), rows):
            key = signature[start]
            for lane in signature[start + 1:start + rows]:
                key = _splitmix64(key ^ lane)
            keys.append(key)
        return tuple(keys)

    def band_key_array(self, signature: tuple[int, ...]):
        """:meth:`band_hash_keys` as a ``(bands,)`` uint64 array.

        The fold repeats :func:`_splitmix64` lane by lane in uint64 wrap
        arithmetic, so the values are bitwise identical to the pure-Python
        keys.
        """
        np = self._np
        lanes = np.asarray(signature, dtype=np.uint64)
        lanes = lanes.reshape(self.config.bands, self.config.rows)
        keys = lanes[:, 0]
        with np.errstate(over="ignore"):
            for row in range(1, self.config.rows):
                keys = self._splitmix64_np(np, keys ^ lanes[:, row])
        return keys
