"""Wire format of the join service: line-delimited JSON.

Every request and every response is one JSON object on one line
(NDJSON), so the protocol can be spoken by ``nc``, a five-line script in
any language, or the bundled :class:`~repro.service.client.ServiceClient`.
Requests carry an ``op`` field naming the operation; responses always
carry ``ok`` (and ``error`` when ``ok`` is false).

Vectors travel as compact triples ``[id, timestamp, [dim, value, dim,
value, ...]]`` — the coordinate list is flat to halve the JSON nesting
overhead on the hot ingest path.  Pairs travel as plain objects mirroring
:class:`repro.core.results.SimilarPair`.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.results import SimilarPair
from repro.core.vector import SparseVector
from repro.exceptions import SSSJError

__all__ = [
    "ServiceProtocolError",
    "OPS",
    "encode_vector",
    "decode_vector",
    "pair_to_wire",
    "pair_from_wire",
    "dump_line",
    "parse_line",
    "error_response",
]

#: Operations understood by the server (see ``repro.service.server``).
OPS = ("ping", "open", "ingest", "results", "stats", "metrics", "sessions",
       "evict", "checkpoint", "drain", "close", "shutdown")


class ServiceProtocolError(SSSJError):
    """Raised on malformed requests, responses or wire payloads."""


def encode_vector(vector: SparseVector) -> list[Any]:
    """Encode a vector as the compact ``[id, ts, flat-coords]`` triple."""
    coords: list[float] = []
    for dim, value in vector:
        coords.append(dim)
        coords.append(value)
    return [vector.vector_id, vector.timestamp, coords]


def decode_vector(payload: Any, *, normalize: bool = True) -> SparseVector:
    """Decode a ``[id, ts, flat-coords]`` triple into a :class:`SparseVector`.

    Producers sending raw weights keep ``normalize=True`` (the session
    config's default).  Producers sending already unit-normalised vectors
    should open their session with ``normalize=False``: re-normalising a
    unit vector is not bitwise-stable, and the service's determinism
    guarantee is relative to the vectors as decoded.
    """
    try:
        vector_id, timestamp, coords = payload
        if len(coords) % 2:
            raise ValueError(f"odd coordinate list of length {len(coords)}")
        entries = {int(coords[i]): float(coords[i + 1])
                   for i in range(0, len(coords), 2)}
        return SparseVector(int(vector_id), float(timestamp), entries,
                            normalize=normalize)
    except (TypeError, ValueError, IndexError) as error:
        raise ServiceProtocolError(f"bad vector payload {payload!r}: {error}") from error


def pair_to_wire(pair: SimilarPair) -> dict[str, Any]:
    """Encode a reported pair as a plain JSON object."""
    return {
        "id_a": pair.id_a,
        "id_b": pair.id_b,
        "similarity": pair.similarity,
        "time_delta": pair.time_delta,
        "dot": pair.dot,
        "reported_at": pair.reported_at,
    }


def pair_from_wire(payload: dict[str, Any]) -> SimilarPair:
    """Decode a pair object produced by :func:`pair_to_wire`."""
    try:
        return SimilarPair(
            id_a=int(payload["id_a"]), id_b=int(payload["id_b"]),
            similarity=float(payload["similarity"]),
            time_delta=float(payload.get("time_delta", 0.0)),
            dot=float(payload.get("dot", 0.0)),
            reported_at=float(payload.get("reported_at", 0.0)),
        )
    except (TypeError, KeyError, ValueError) as error:
        raise ServiceProtocolError(f"bad pair payload {payload!r}: {error}") from error


def dump_line(message: dict[str, Any]) -> bytes:
    """Serialise one message as a single NDJSON line (UTF-8, newline-terminated)."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def parse_line(line: bytes | str) -> dict[str, Any]:
    """Parse one NDJSON line into a message dictionary."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    try:
        message = json.loads(line)
    except ValueError as error:
        raise ServiceProtocolError(f"request is not valid JSON: {error}") from error
    if not isinstance(message, dict):
        raise ServiceProtocolError(
            f"request must be a JSON object, got {type(message).__name__}")
    return message


def error_response(message: str, **extra: Any) -> dict[str, Any]:
    """The canonical ``ok: false`` response shape."""
    response: dict[str, Any] = {"ok": False, "error": message}
    response.update(extra)
    return response
