"""Result sinks: where a session's matched pairs stream out to.

A :class:`JoinSession` owns a list of sinks and hands every batch of
reported pairs to each of them, in report order, from its worker thread.
Three sinks cover the common shapes:

* :class:`MemorySink` — an in-memory subscription cursor: readers poll
  ``read(cursor)`` and get everything reported since their cursor.  This
  is what the server's ``results`` operation reads from.
* :class:`JsonlSink` — appends one JSON object per pair to a file.  It
  participates in checkpointing: the session records the sink's byte
  offset in each checkpoint, and on crash recovery the file is truncated
  back to that offset, so re-feeding the post-checkpoint vectors cannot
  duplicate pairs (exactly-once output per retained checkpoint).
* :class:`CallbackSink` — forwards each pair to a user callable
  (embedding the session in another Python process).

The sink contract is deliberately small: ``emit`` (called with a batch of
pairs), ``flush``/``close`` (durability and teardown), and the optional
checkpoint hooks ``position``/``restore`` for sinks with durable state.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.core.results import SimilarPair
from repro.exceptions import SSSJError
from repro.service.protocol import pair_from_wire, pair_to_wire

__all__ = [
    "SinkError",
    "ResultSink",
    "MemorySink",
    "JsonlSink",
    "CallbackSink",
    "create_sink",
    "read_jsonl_pairs",
]


class SinkError(SSSJError):
    """Raised when a sink cannot accept pairs or restore its state."""


class ResultSink:
    """Base class of result sinks; subclasses override :meth:`emit`.

    ``emit`` is always called from the session's single worker thread, so
    sinks only need internal locking when they are *also* read from other
    threads (as :class:`MemorySink` is).
    """

    #: Short machine-readable sink kind (used in checkpoints and stats).
    kind: str = "abstract"

    def emit(self, pairs: Sequence[SimilarPair]) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Make emitted pairs durable (no-op for volatile sinks)."""

    def close(self) -> None:
        """Release resources; the sink must not be emitted to afterwards."""

    def position(self) -> dict[str, Any] | None:
        """Checkpoint token for durable sinks, ``None`` for volatile ones."""
        return None

    def restore(self, token: dict[str, Any]) -> None:
        """Roll durable state back to a :meth:`position` token."""

    def spec(self) -> dict[str, Any] | None:
        """Reconstruction spec for :func:`create_sink`; ``None`` when the
        sink cannot be rebuilt from a checkpoint (e.g. callbacks)."""
        return None

    def describe(self) -> dict[str, Any]:
        """One stats row describing the sink."""
        return {"kind": self.kind}


class MemorySink(ResultSink):
    """In-memory subscription cursor over the reported pairs.

    Pairs get consecutive sequence numbers starting at 0; ``read(cursor)``
    returns the pairs with sequence ≥ cursor (up to ``limit``) plus the
    next cursor value.  At most ``capacity`` recent pairs are retained —
    a reader that falls further behind observes a gap, reported through
    the ``first_retained`` field, instead of the server growing without
    bound.
    """

    kind = "memory"

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._pairs: deque[SimilarPair] = deque(maxlen=capacity)
        self._next_seq = 0  # sequence number of the next pair to arrive
        self._lock = threading.Lock()

    def emit(self, pairs: Sequence[SimilarPair]) -> None:
        with self._lock:
            self._pairs.extend(pairs)
            self._next_seq += len(pairs)

    @property
    def count(self) -> int:
        """Total pairs ever emitted (including evicted ones)."""
        with self._lock:
            return self._next_seq

    @property
    def first_retained(self) -> int:
        """Sequence number of the oldest pair still in memory."""
        with self._lock:
            return self._next_seq - len(self._pairs)

    def read(self, cursor: int = 0, limit: int | None = None,
             ) -> tuple[list[SimilarPair], int, int]:
        """Pairs with sequence ≥ ``cursor``: ``(pairs, next_cursor, first_retained)``.

        ``first_retained > cursor`` signals that the reader fell behind
        the retention window and pairs were evicted unseen.
        """
        if cursor < 0:
            raise ValueError(f"cursor must be >= 0, got {cursor}")
        with self._lock:
            first_retained = self._next_seq - len(self._pairs)
            start = max(cursor, first_retained)
            skip = start - first_retained
            take = len(self._pairs) - skip
            if limit is not None:
                take = min(take, max(0, limit))
            window: list[SimilarPair] = []
            for index, pair in enumerate(self._pairs):
                if index < skip:
                    continue
                if len(window) >= take:
                    break
                window.append(pair)
            return window, start + len(window), first_retained

    def position(self) -> dict[str, Any]:
        # Memory contents do not survive a crash; checkpoint only the
        # sequence base so cursors stay monotonic across a recovery.
        with self._lock:
            return {"count": self._next_seq}

    def restore(self, token: dict[str, Any]) -> None:
        with self._lock:
            self._pairs.clear()
            self._next_seq = int(token.get("count", 0))

    def spec(self) -> dict[str, Any]:
        return {"kind": self.kind, "capacity": self.capacity}

    def describe(self) -> dict[str, Any]:
        with self._lock:
            return {"kind": self.kind, "count": self._next_seq,
                    "retained": len(self._pairs), "capacity": self.capacity}


class JsonlSink(ResultSink):
    """Appends one JSON object per pair to a file (the durable sink).

    Tracks the byte offset and pair count it has written; those form its
    checkpoint token.  On recovery, :meth:`restore` truncates the file
    back to the checkpointed offset, discarding pairs emitted after the
    checkpoint — the session then re-derives them by re-feeding the
    post-checkpoint vectors, so the file never holds duplicates.
    """

    kind = "jsonl"

    def __init__(self, path: str | Path, *, append: bool = True) -> None:
        self.path = Path(path)
        mode = "a" if append else "w"
        self._handle = open(self.path, mode, encoding="utf-8")
        self._offset = self._handle.tell()
        self._count = self._count_existing() if append and self._offset else 0

    def _count_existing(self) -> int:
        with open(self.path, "r", encoding="utf-8") as handle:
            return sum(1 for line in handle if line.strip())

    def emit(self, pairs: Sequence[SimilarPair]) -> None:
        for pair in pairs:
            line = json.dumps(pair_to_wire(pair), separators=(",", ":"))
            self._handle.write(line + "\n")
        self._count += len(pairs)
        self._handle.flush()
        self._offset = self._handle.tell()

    def flush(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def position(self) -> dict[str, Any]:
        return {"path": str(self.path), "offset": self._offset,
                "count": self._count}

    def restore(self, token: dict[str, Any]) -> None:
        offset = int(token.get("offset", 0))
        count = int(token.get("count", 0))
        self._handle.flush()
        size = self.path.stat().st_size
        if size < offset:
            raise SinkError(
                f"{self.path}: file shrank below the checkpointed offset "
                f"({size} < {offset}); refusing to recover from it")
        if size > offset:
            # Pairs written after the checkpoint: roll them back so the
            # re-fed vectors cannot produce duplicates.
            self._handle.truncate(offset)
        self._handle.seek(offset)
        self._offset = offset
        self._count = count

    def spec(self) -> dict[str, Any]:
        return {"kind": self.kind, "path": str(self.path)}

    def describe(self) -> dict[str, Any]:
        return {"kind": self.kind, "path": str(self.path),
                "count": self._count, "bytes": self._offset}

    def read_pairs(self) -> list[SimilarPair]:
        """Read every pair currently in the file (helper for clients/tests)."""
        self._handle.flush()
        pairs: list[SimilarPair] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    pairs.append(pair_from_wire(json.loads(line)))
        return pairs


class CallbackSink(ResultSink):
    """Forwards every pair to a user-provided callable."""

    kind = "callback"

    def __init__(self, callback: Callable[[SimilarPair], None]) -> None:
        self._callback = callback

    def emit(self, pairs: Sequence[SimilarPair]) -> None:
        for pair in pairs:
            self._callback(pair)


def create_sink(spec: dict[str, Any]) -> ResultSink:
    """Build a sink from a specification dict (``{"kind": ..., ...}``).

    Used by the server to materialise the sinks a client requested in its
    ``open`` message and by the recovery scan to rebuild them from a
    checkpoint.  Callback sinks are in-process only and cannot be
    requested over the wire.
    """
    kind = spec.get("kind")
    if kind == "jsonl":
        path = spec.get("path")
        if not path:
            raise SinkError("jsonl sink spec requires a 'path'")
        return JsonlSink(path)
    if kind == "memory":
        return MemorySink(capacity=int(spec.get("capacity", 100_000)))
    raise SinkError(f"unknown sink kind {kind!r}; expected 'memory' or 'jsonl'")


def read_jsonl_pairs(path: str | Path) -> list[SimilarPair]:
    """Read a JSONL pair file without constructing a sink."""
    pairs: list[SimilarPair] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                pairs.append(pair_from_wire(json.loads(line)))
    return pairs
