"""The join server: many sessions behind one NDJSON socket endpoint.

Two layers:

* :class:`JoinService` — the transport-independent core: a registry of
  named :class:`~repro.service.session.JoinSession` objects plus the
  request dispatcher (``open`` / ``ingest`` / ``results`` / ``stats`` /
  ``checkpoint`` / ``drain`` / ``close`` / ``shutdown``).  Tests drive it
  directly with plain dictionaries.
* :class:`ServiceServer` — a threaded TCP server (one thread per client
  connection) speaking the line-delimited JSON protocol of
  :mod:`repro.service.protocol` on a local socket.  ``sssj serve`` wraps
  it.

Crash recovery: when the service is given a checkpoint directory, every
session with checkpointing enabled writes its envelope there
(atomically), and :meth:`JoinService.recover_sessions` — called at
server start — resumes every ``*.ckpt`` found, so a ``kill -9`` loses at
most the vectors ingested after the last checkpoint (which the producer
re-feeds, guided by the resumed session's ``processed`` counter; the
JSONL sink rollback guarantees no duplicated pairs).
"""

from __future__ import annotations

import socketserver
import sys
import threading
import time
from pathlib import Path
from typing import Any

from repro import obs
from repro.core.join import parse_algorithm
from repro.exceptions import SSSJError
from repro.service.protocol import (
    ServiceProtocolError,
    decode_vector,
    dump_line,
    error_response,
    pair_to_wire,
    parse_line,
)
from repro.service.session import (
    BackpressureError,
    JoinSession,
    SessionConfig,
    SessionError,
)
from repro.service.sinks import SinkError, create_sink

__all__ = ["JoinService", "ServiceServer", "serve"]

_SESSION_NAME_OK = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")

#: ``JoinStatistics`` counters that only ever grow — exported as
#: Prometheus counters via delta tracking (several sessions feed the
#: same labeled series).
_ENGINE_MONOTONE = (
    "vectors_processed", "pairs_output", "entries_traversed",
    "candidates_generated", "candidates_sketch_pruned", "full_similarities",
    "entries_indexed", "entries_pruned", "reindexings", "reindexed_entries",
    "index_rebuilds",
)
#: Level-style engine statistics — exported as gauges.
_ENGINE_GAUGES = ("residual_entries", "max_index_size", "max_residual_size")


def _collect_service(service: "JoinService") -> None:
    """Scrape-time collector: export the session registry to the metrics
    registry.  Reads plain attributes and cached snapshots only — never
    forces a restore, never touches per-posting state."""
    registry = obs.get_registry()
    tracker = service._obs_tracker
    with service._lock:
        sessions = dict(service.sessions)
    registry.gauge("sssj_server_sessions",
                   "Sessions currently registered.").labels().set(
        len(sessions))
    registry.gauge("sssj_server_uptime_seconds",
                   "Service uptime.").labels().set(
        time.monotonic() - service.started_at)
    queue_gauge = registry.gauge(
        "sssj_session_queue_depth", "Vectors waiting in the bounded queue.",
        ("session", "tenant"))
    tenant_ingest = registry.counter(
        "sssj_tenant_ingested_vectors_total",
        "Vectors accepted for ingestion per tenant.", ("tenant",))
    for name, session in sessions.items():
        config = session.config
        epoch = round(session.started_at, 6)
        join = session.join
        if join is not None:
            counters = join.stats.as_dict()
            backend = getattr(join, "backend_name", config.backend)
        else:  # evicted placeholder: last-known snapshot
            cached = session._evicted_stats or {}
            counters = cached.get("counters", {})
            backend = cached.get("backend", config.backend)
        backend = backend or "default"
        labels = {"session": name, "tenant": config.tenant,
                  "backend": backend}
        for key in _ENGINE_MONOTONE:
            if key not in counters:
                continue
            child = registry.counter(
                f"sssj_engine_{key}_total",
                f"Engine statistic {key} (see JoinStatistics).",
                ("session", "tenant", "backend")).labels(**labels)
            tracker.export(child, (key, name, epoch), counters[key])
        for key in _ENGINE_GAUGES:
            if key not in counters:
                continue
            registry.gauge(
                f"sssj_engine_{key}",
                f"Engine statistic {key} (see JoinStatistics).",
                ("session", "tenant", "backend")).labels(**labels).set(
                counters[key])
        queue_gauge.labels(session=name, tenant=config.tenant).set(
            session.queued)
        tracker.export(tenant_ingest.labels(tenant=config.tenant),
                       ("tenant_ingest", name, epoch), session.accepted)


def _session_name(request: dict[str, Any]) -> str:
    name = request.get("session")
    if not isinstance(name, str) or not name:
        raise ServiceProtocolError("request needs a 'session' name")
    if not set(name) <= _SESSION_NAME_OK:
        raise ServiceProtocolError(
            f"session name {name!r} may only use letters, digits, '.', '_', '-'")
    return name


class JoinService:
    """Session registry and request dispatcher (no transport of its own)."""

    def __init__(self, *, checkpoint_dir: str | Path | None = None,
                 checkpoint_every_items: int | None = None,
                 checkpoint_every_seconds: float | None = None,
                 fault_injector=None) -> None:
        #: Optional service-wide :class:`~repro.faults.FaultInjector`:
        #: sink faults are injected inside every session's emit loop,
        #: sever faults by the connection handler, worker faults by the
        #: sharded engine of sessions opened with process workers.
        self.fault_injector = fault_injector
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        if self.checkpoint_dir is not None:
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        #: Server-level defaults applied to sessions that enable
        #: checkpointing without naming their own cadence.
        self.checkpoint_every_items = checkpoint_every_items
        self.checkpoint_every_seconds = checkpoint_every_seconds
        self.sessions: dict[str, JoinSession] = {}
        self._lock = threading.RLock()
        self.started_at = time.monotonic()
        self.requests_handled = 0
        self.shutting_down = False
        self._obs_requests = None
        self._obs_tracker = obs.DeltaTracker()
        if obs.enabled():
            self._obs_requests = obs.get_registry().counter(
                "sssj_server_requests_total",
                "Requests dispatched by op.", ("op",))
            obs.get_registry().add_collector(_collect_service, owner=self)

    # -- session management ----------------------------------------------------

    def checkpoint_path_for(self, name: str) -> Path | None:
        if self.checkpoint_dir is None:
            return None
        return self.checkpoint_dir / f"{name}.ckpt"

    def recover_sessions(self) -> list[str]:
        """Resume every checkpointed session found in the checkpoint dir."""
        if self.checkpoint_dir is None:
            return []
        recovered: list[str] = []
        with self._lock:
            for path in sorted(self.checkpoint_dir.glob("*.ckpt")):
                name = path.stem
                if name in self.sessions:
                    continue
                session = self._resume_session(path)
                session.start()
                self.sessions[name] = session
                recovered.append(name)
        return recovered

    # Session construction hooks: the scheduler service overrides these
    # to attach itself (pooled execution) to every session it serves.

    def _build_session(self, config: SessionConfig, sinks: list,
                       checkpoint_path: Path | None) -> JoinSession:
        return JoinSession(config, sinks=sinks, checkpoint_path=checkpoint_path,
                           fault_injector=self.fault_injector)

    def _resume_session(self, path: Path) -> JoinSession:
        return JoinSession.resume(path)

    def _config_from_request(self, name: str,
                             request: dict[str, Any]) -> SessionConfig:
        threshold = request.get("theta", request.get("threshold"))
        decay = request.get("decay")
        if threshold is None or decay is None:
            raise ServiceProtocolError(
                "open needs 'theta' (or 'threshold') and 'decay'")
        checkpointed = self.checkpoint_dir is not None and bool(
            request.get("checkpoint", True))
        every_items = request.get("checkpoint_every_items",
                                  self.checkpoint_every_items)
        every_seconds = request.get("checkpoint_every_seconds",
                                    self.checkpoint_every_seconds)
        if checkpointed and every_items is None and every_seconds is None:
            every_items = 500  # sane default cadence for served sessions
        return SessionConfig(
            name=name,
            threshold=float(threshold),
            decay=float(decay),
            tenant=str(request.get("tenant", "default")),
            algorithm=str(request.get("algorithm", "STR-L2")),
            backend=request.get("backend"),
            workers=(int(request["workers"])
                     if request.get("workers") is not None else None),
            shard_executor=str(request.get("shard_executor", "serial")),
            approx=request.get("approx"),
            queue_max=int(request.get("queue_max", 4096)),
            batch_max_items=int(request.get("batch_max_items", 128)),
            batch_max_delay=float(request.get("batch_max_delay_ms", 50.0)) / 1e3,
            backpressure=str(request.get("backpressure", "block")),
            normalize=bool(request.get("normalize", True)),
            results_capacity=int(request.get("results_capacity", 100_000)),
            checkpoint_every_items=every_items if checkpointed else None,
            checkpoint_every_seconds=every_seconds if checkpointed else None,
        )

    def open_session(self, request: dict[str, Any]) -> dict[str, Any]:
        name = _session_name(request)
        with self._lock:
            existing = self.sessions.get(name)
            if existing is not None:
                return {"ok": True, "session": name, "existing": True,
                        "resumed": existing.resumed,
                        "processed": existing.processed,
                        "ingest_seq": existing.ingest_seq,
                        "status": existing.status}
            checkpoint_path = self.checkpoint_path_for(name)
            wants_checkpoint = bool(request.get("checkpoint", True))
            if checkpoint_path is not None and wants_checkpoint \
                    and checkpoint_path.exists():
                session = self._resume_session(checkpoint_path)
            else:
                config = self._config_from_request(name, request)
                sinks = [create_sink(spec) for spec in request.get("sinks", [])]
                path = checkpoint_path if wants_checkpoint else None
                # Non-STR / sharded sessions cannot checkpoint; serve them
                # without recovery rather than refusing them outright.
                framework, _ = parse_algorithm(config.algorithm)
                if path is not None and (config.workers is not None
                                         or framework != "STR"):
                    path = None
                if path is None:
                    config = SessionConfig.from_dict({
                        **config.as_dict(),
                        "checkpoint_every_items": None,
                        "checkpoint_every_seconds": None,
                    })
                session = self._build_session(config, sinks, path)
            session.start()
            self.sessions[name] = session
            return {"ok": True, "session": name, "existing": False,
                    "resumed": session.resumed,
                    "processed": session.processed,
                    "ingest_seq": session.ingest_seq,
                    "status": session.status}

    def _session(self, name: str) -> JoinSession:
        with self._lock:
            session = self.sessions.get(name)
        if session is None:
            raise SessionError(f"no session named {name!r}; open it first")
        return session

    # -- request dispatch ------------------------------------------------------

    def handle(self, request: dict[str, Any]) -> dict[str, Any]:
        """Serve one request dictionary; always returns a response dict."""
        self.requests_handled += 1
        op = request.get("op")
        if self._obs_requests is not None:
            self._obs_requests.labels(op=str(op)).inc()
        try:
            if op == "ping":
                return {"ok": True, "pong": True,
                        "uptime_s": round(time.monotonic() - self.started_at, 3)}
            if op == "open":
                return self.open_session(request)
            if op == "ingest":
                return self._handle_ingest(request)
            if op == "results":
                return self._handle_results(request)
            if op == "stats":
                return self.stats(request.get("session"))
            if op == "metrics":
                return self.metrics_snapshot()
            if op == "sessions":
                return self.session_list(request.get("tenant"))
            if op == "evict":
                return self._handle_evict(request)
            if op == "checkpoint":
                session = self._session(_session_name(request))
                return {"ok": True,
                        "checkpoint": str(session.checkpoint_now())}
            if op == "drain":
                return self._handle_drain(request)
            if op == "close":
                return self.close_session(_session_name(request))
            if op == "shutdown":
                return self.shutdown()
            raise ServiceProtocolError(f"unknown op {op!r}")
        except BackpressureError as error:
            return error_response(str(error), backpressure=True)
        except (ServiceProtocolError, SessionError, SinkError,
                SSSJError, ValueError, OSError) as error:
            extra = {}
            worker_traceback = getattr(error, "worker_traceback", None)
            if worker_traceback:
                extra["traceback"] = worker_traceback
            # Quota rejections (scheduler service) carry a machine-readable
            # code and, for rate limits, a precise back-off hint.
            code = getattr(error, "code", None)
            if code:
                extra["code"] = code
                extra["quota"] = True
            retry_after = getattr(error, "retry_after_s", None)
            if retry_after is not None:
                extra["retry_after_s"] = retry_after
            return error_response(str(error), **extra)

    def close_session(self, name: str) -> dict[str, Any]:
        """Close and deregister one session.

        Idempotent: closing a session that is already gone is a success,
        so a client retrying a close whose ack was lost does not see a
        spurious error.
        """
        with self._lock:
            session = self.sessions.pop(name, None)
        if session is None:
            return {"ok": True, "session": name, "missing": True}
        session.close()
        return {"ok": True, "session": name}

    def _handle_ingest(self, request: dict[str, Any]) -> dict[str, Any]:
        session = self._session(_session_name(request))
        payloads = request.get("vectors")
        if not isinstance(payloads, list):
            raise ServiceProtocolError("ingest needs a 'vectors' list")
        vectors = [decode_vector(payload,
                                 normalize=session.config.normalize)
                   for payload in payloads]
        seq = request.get("seq")
        deduped_before = session.deduped
        accepted, dropped = session.ingest(
            vectors, seq=None if seq is None else int(seq))
        return {"ok": True, "accepted": accepted, "dropped": dropped,
                "deduped": session.deduped - deduped_before,
                "ingest_seq": session.ingest_seq,
                "queued": session.queued}

    def _handle_drain(self, request: dict[str, Any]) -> dict[str, Any]:
        session = self._session(_session_name(request))

        def _summary() -> dict[str, Any]:
            return {"ok": True, "processed": session.processed,
                    "pairs_emitted": session.pairs_emitted,
                    "already_drained": True}

        # Idempotent: re-draining a drained session (a client retrying a
        # drain whose ack was severed) returns the summary again.
        if session.status == "drained":
            return _summary()
        try:
            summary = session.drain()
        except SessionError:
            if session.status == "drained":
                return _summary()
            raise
        return {"ok": True, **summary}

    def _handle_results(self, request: dict[str, Any]) -> dict[str, Any]:
        session = self._session(_session_name(request))
        # A dead worker must surface on the next read, not as an
        # indefinitely-quiet result stream.
        session.raise_if_failed()
        cursor = int(request.get("cursor", 0))
        limit = request.get("limit")
        pairs, next_cursor, first_retained = session.results.read(
            cursor, None if limit is None else int(limit))
        return {
            "ok": True,
            "pairs": [pair_to_wire(pair) for pair in pairs],
            "cursor": next_cursor,
            "first_retained": first_retained,
            "status": session.status,
            "processed": session.processed,
            "queued": session.queued,
        }

    def metrics_snapshot(self) -> dict[str, Any]:
        """Prometheus text over the wire (the ``metrics`` protocol op)."""
        return {"ok": True, "content_type": obs.CONTENT_TYPE,
                "metrics": obs.render()}

    def stats(self, session: str | None = None) -> dict[str, Any]:
        """Live counters and latency percentiles (the ``stats`` endpoint)."""
        with self._lock:
            sessions = dict(self.sessions)
        if session is not None:
            target = sessions.get(session)
            if target is None:
                raise SessionError(f"no session named {session!r}")
            return {"ok": True, "sessions": {session: target.stats()}}
        return {
            "ok": True,
            "server": {
                "uptime_s": round(time.monotonic() - self.started_at, 3),
                "sessions": len(sessions),
                "requests_handled": self.requests_handled,
                "checkpoint_dir": (str(self.checkpoint_dir)
                                   if self.checkpoint_dir else None),
            },
            "sessions": {name: s.stats() for name, s in sessions.items()},
        }

    def session_list(self, tenant: str | None = None) -> dict[str, Any]:
        """One summary row per session (the ``sessions`` op / CLI table).

        Unlike ``stats`` this never touches the join engine, so it is
        safe (and free) on evicted placeholders — the scheduler's
        observability surface at any session count.
        """
        with self._lock:
            sessions = dict(self.sessions)
        rows = [self._session_row(name, session)
                for name, session in sorted(sessions.items())
                if tenant is None or session.config.tenant == tenant]
        return {"ok": True, "count": len(rows), "sessions": rows}

    @staticmethod
    def _session_row(name: str, session: JoinSession) -> dict[str, Any]:
        latency = session.latency.summary()
        return {
            "session": name,
            "tenant": session.config.tenant,
            "status": session.status,
            "run_state": session.run_state,
            "queued": session.queued,
            "processed": session.processed,
            "pairs_emitted": session.pairs_emitted,
            "batches_flushed": session.batches_flushed,
            "p50_ms": latency["p50_ms"],
            "p95_ms": latency["p95_ms"],
            "p99_ms": latency["p99_ms"],
        }

    def _handle_evict(self, request: dict[str, Any]) -> dict[str, Any]:
        raise ServiceProtocolError(
            "evict requires the pooled scheduler; start the server with "
            "--pool-workers")

    def shutdown(self) -> dict[str, Any]:
        """Checkpoint and close every session; idempotent."""
        with self._lock:
            if self.shutting_down:
                return {"ok": True, "closed": 0}
            self.shutting_down = True
            sessions = list(self.sessions.items())
            self.sessions.clear()
        for _name, session in sessions:
            session.close()
        return {"ok": True, "closed": len(sessions)}


class _RequestHandler(socketserver.StreamRequestHandler):
    """One client connection: NDJSON requests in, NDJSON responses out.

    Each read is bounded by the server's ``read_timeout`` (when set): a
    connection that goes quiet mid-stream is dropped instead of pinning
    its handler thread forever — the client reconnects and resumes, with
    sequence-numbered ingest guaranteeing no duplicates.
    """

    def setup(self) -> None:  # pragma: no cover - exercised via sockets
        # StreamRequestHandler applies self.timeout as the socket timeout.
        self.timeout = self.server.read_timeout  # type: ignore[attr-defined]
        super().setup()

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        while True:
            try:
                line = self.rfile.readline()
            except (TimeoutError, OSError):
                return  # idle past the read deadline: drop the connection
            if not line:
                return
            if not line.strip():
                continue
            try:
                request = parse_line(line)
            except ServiceProtocolError as error:
                self.wfile.write(dump_line(error_response(str(error))))
                self.wfile.flush()
                continue
            response = self.server.service.handle(request)  # type: ignore[attr-defined]
            injector = self.server.service.fault_injector  # type: ignore[attr-defined]
            if (injector is not None and request.get("op") == "ingest"
                    and response.get("ok") and injector.client_sever_due()):
                # Sever *after* the request was applied but before the ack
                # — the harshest spot: the client must retry into the
                # sequence-number dedup.
                return
            self.wfile.write(dump_line(response))
            self.wfile.flush()
            if request.get("op") == "shutdown" and response.get("ok"):
                self.server.request_stop()  # type: ignore[attr-defined]
                break


class ServiceServer(socketserver.ThreadingTCPServer):
    """Threaded TCP transport for a :class:`JoinService` on a local socket."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, service: JoinService, host: str = "127.0.0.1",
                 port: int = 0, *, read_timeout: float | None = None) -> None:
        self.service = service
        self.read_timeout = read_timeout
        super().__init__((host, port), _RequestHandler)

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — port is resolved when 0 was asked."""
        host, port = self.socket.getsockname()[:2]
        return host, port

    def request_stop(self) -> None:
        """Stop ``serve_forever`` from a handler thread (non-blocking)."""
        threading.Thread(target=self.shutdown, daemon=True).start()

    def serve_until_shutdown(self) -> None:
        """Serve requests until a ``shutdown`` op (or KeyboardInterrupt)."""
        try:
            self.serve_forever(poll_interval=0.1)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            self.service.shutdown()
            self.server_close()
            metrics_server = getattr(self, "obs_metrics_server", None)
            if metrics_server is not None:
                metrics_server.close()


def serve(*, host: str = "127.0.0.1", port: int = 0,
          checkpoint_dir: str | Path | None = None,
          checkpoint_every_items: int | None = None,
          checkpoint_every_seconds: float | None = None,
          read_timeout: float | None = None,
          fault_plan=None,
          pool_workers: int | None = None,
          scheduler_options: dict[str, Any] | None = None,
          dispatch_workers: int = 8,
          metrics_port: int | None = None,
          metrics_host: str = "127.0.0.1",
          trace_sample: float | None = None,
          span_log: str | Path | None = None,
          slow_batch_ms: float | None = None,
          trace_seed: int = 0,
          ):
    """Build a service + TCP server and recover checkpointed sessions.

    Returns ``(server, recovered_session_names)``; the caller runs
    ``server.serve_until_shutdown()`` (blocking) or drives
    ``serve_forever`` on its own thread (tests).  ``fault_plan`` (a spec
    string or :class:`~repro.faults.FaultPlan`) arms service-wide fault
    injection; the injector is reachable as ``server.service.fault_injector``
    (e.g. to write its event log after shutdown).

    ``pool_workers`` switches on the multi-tenant tier: a
    :class:`~repro.service.scheduler.SchedulerService` running sessions
    over a bounded worker pool behind the selector-based
    :class:`~repro.service.scheduler.SelectorServiceServer` (one I/O
    loop for every connection, instead of thread-per-connection).
    ``scheduler_options`` passes extra :class:`SchedulerService` keyword
    arguments (quotas, ``evict_after``, adaptive batching, ...).  Left
    at ``None``, the legacy thread-per-session server is used.

    Observability: ``metrics_port`` exposes the process metrics registry
    as a plain-HTTP Prometheus endpoint (``GET /metrics``; port 0 picks
    a free one — the bound address is ``server.obs_metrics_server.address``).
    ``trace_sample`` / ``span_log`` / ``slow_batch_ms`` configure the
    process tracer: sampled spans (and every slow batch) are appended to
    the NDJSON ``span_log``; slow batches are also reported on stderr.
    """
    if trace_sample or span_log is not None or slow_batch_ms is not None:
        def _report_slow(record: dict) -> None:
            print(f"[obs] slow span {record.get('span')} "
                  f"dur_ms={record.get('dur_ms')} "
                  f"session={record.get('session')}",
                  file=sys.stderr, flush=True)

        obs.configure(
            trace_sample=trace_sample,
            span_path=span_log,
            slow_batch_ms=slow_batch_ms,
            seed=trace_seed,
            on_slow=_report_slow if slow_batch_ms is not None else None)
    metrics_server = None
    if metrics_port is not None:
        metrics_server = obs.start_metrics_server(
            obs.get_registry(), host=metrics_host, port=metrics_port)
    fault_injector = None
    if fault_plan is not None:
        from repro.faults import FaultInjector, parse_fault_plan

        fault_injector = (fault_plan if isinstance(fault_plan, FaultInjector)
                          else FaultInjector(parse_fault_plan(fault_plan)))
    if pool_workers is not None:
        from repro.service.scheduler import (
            SchedulerService,
            SelectorServiceServer,
        )

        service = SchedulerService(
            pool_workers=pool_workers,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every_items=checkpoint_every_items,
            checkpoint_every_seconds=checkpoint_every_seconds,
            fault_injector=fault_injector,
            **(scheduler_options or {}))
        recovered = service.recover_sessions()
        server = SelectorServiceServer(service, host=host, port=port,
                                       read_timeout=read_timeout,
                                       dispatch_workers=dispatch_workers)
        server.obs_metrics_server = metrics_server
        return server, recovered
    service = JoinService(checkpoint_dir=checkpoint_dir,
                          checkpoint_every_items=checkpoint_every_items,
                          checkpoint_every_seconds=checkpoint_every_seconds,
                          fault_injector=fault_injector)
    recovered = service.recover_sessions()
    server = ServiceServer(service, host=host, port=port,
                           read_timeout=read_timeout)
    server.obs_metrics_server = metrics_server
    return server, recovered
