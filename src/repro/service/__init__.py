"""Long-running streaming join service.

The batch CLI answers "join this finite file"; this package answers
"keep joining whatever arrives, indefinitely".  It layers on the
existing engine without changing it:

* :class:`JoinSession` — one live join (any algorithm/backend, optionally
  sharded via ``workers``) behind a bounded queue with micro-batching,
  explicit backpressure (``block`` / ``drop`` / ``error``) and periodic
  atomic checkpoints;
* sinks (:class:`MemorySink`, :class:`JsonlSink`, :class:`CallbackSink`)
  — where matched pairs stream out as they are found;
* :class:`JoinService` / :class:`ServiceServer` — many named sessions
  behind a line-delimited-JSON socket protocol (``sssj serve``), with
  crash recovery from the checkpoint directory;
* :class:`ServiceClient` — the protocol client behind ``sssj ingest`` /
  ``sssj results`` / ``sssj drain``;
* :mod:`repro.service.scheduler` — the multi-tenant tier (``sssj serve
  --pool-workers N``): N sessions over a bounded worker pool with
  per-tenant quotas, DRR fairness, checkpoint-evict / lazy restore and
  a selector-based single-loop transport.

Determinism contract: for the same accepted vectors, a session emits
exactly the pairs of :func:`repro.core.join.streaming_self_join` — in
the same order, with the same similarities — whatever the batching or
backpressure configuration, and across a checkpoint/crash/resume cycle.
"""

from repro.service.client import (
    RETRYABLE_OPS,
    ServiceClient,
    ServiceClientError,
)
from repro.service.protocol import (
    ServiceProtocolError,
    decode_vector,
    encode_vector,
    pair_from_wire,
    pair_to_wire,
)
from repro.service.scheduler import (
    QUOTA_CODES,
    QuotaError,
    SchedulerService,
    SelectorServiceServer,
    TenantQuota,
)
from repro.service.server import JoinService, ServiceServer, serve
from repro.service.session import (
    BACKPRESSURE_POLICIES,
    BackpressureError,
    JoinSession,
    SessionConfig,
    SessionError,
)
from repro.service.sinks import (
    CallbackSink,
    JsonlSink,
    MemorySink,
    ResultSink,
    SinkError,
    create_sink,
    read_jsonl_pairs,
)

__all__ = [
    "BACKPRESSURE_POLICIES",
    "QUOTA_CODES",
    "RETRYABLE_OPS",
    "BackpressureError",
    "CallbackSink",
    "JoinService",
    "JoinSession",
    "JsonlSink",
    "MemorySink",
    "QuotaError",
    "ResultSink",
    "SchedulerService",
    "SelectorServiceServer",
    "ServiceClient",
    "ServiceClientError",
    "ServiceProtocolError",
    "ServiceServer",
    "SessionConfig",
    "SessionError",
    "SinkError",
    "TenantQuota",
    "create_sink",
    "decode_vector",
    "encode_vector",
    "pair_from_wire",
    "pair_to_wire",
    "read_jsonl_pairs",
    "serve",
]
