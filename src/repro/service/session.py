"""Join sessions: one long-running streaming join behind a bounded queue.

A :class:`JoinSession` turns the batch-oriented join engine into something
a producer can feed indefinitely:

* it wraps a :func:`repro.core.join.create_join` framework (any
  algorithm/backend, optionally the sharded engine via ``workers``) with
  per-session parameters (θ, λ, backend, workers),
* ingestion goes through a **bounded queue** with an explicit
  backpressure policy — ``"block"`` (producer waits), ``"drop"`` (newest
  items are discarded and counted) or ``"error"``
  (:class:`BackpressureError`) — so a fast producer cannot OOM the
  server,
* a single worker thread drains the queue in **micro-batches** (flushed
  at ``batch_max_items`` items or ``batch_max_delay`` seconds, whichever
  comes first), feeds the join, and streams reported pairs to the
  session's sinks (:mod:`repro.service.sinks`),
* when a checkpoint path is configured, the worker writes **atomic
  checkpoints** between batches via
  :class:`repro.core.checkpoint.PeriodicCheckpointer`; a crashed session
  is rebuilt by :meth:`JoinSession.resume`, which restores the join
  state, rolls durable sinks back to the checkpointed offset, and
  reports how many vectors the checkpoint covers so the producer can
  re-feed from there.

Because the queue is FIFO and a single worker feeds the join, the pairs a
session emits are **identical** to :func:`repro.core.join.streaming_self_join`
over the same vectors, whatever the batching or backpressure settings
(pinned by a hypothesis test in ``tests/test_service.py``).
"""

from __future__ import annotations

import json
import threading
import time
import traceback as _traceback
from collections import deque
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro import obs
from repro.bench.metrics import LatencyStats
from repro.core.checkpoint import (
    CheckpointError,
    PeriodicCheckpointer,
    atomic_write_json,
    restore_join,
    snapshot_join,
)
from repro.core.join import create_join, parse_algorithm
from repro.core.results import SimilarPair
from repro.core.vector import SparseVector
from repro.exceptions import SSSJError, StreamOrderError
from repro.service.sinks import MemorySink, ResultSink, SinkError, create_sink

__all__ = [
    "SERVICE_CHECKPOINT_VERSION",
    "BACKPRESSURE_POLICIES",
    "RUN_STATES",
    "SessionError",
    "BackpressureError",
    "SessionConfig",
    "JoinSession",
]

SERVICE_CHECKPOINT_VERSION = 1

#: What ingestion does when the bounded queue is full.
BACKPRESSURE_POLICIES = ("block", "drop", "error")

#: Scheduler-visible run states of a pooled session.  ``"thread"`` marks
#: the legacy mode where the session owns a dedicated worker thread and
#: is never scheduled.
RUN_STATES = ("idle", "ready", "running", "evicted", "thread")


class SessionError(SSSJError):
    """Raised when a session is used in a state that cannot serve the call.

    When the session failed because its worker thread died,
    ``worker_traceback`` carries the original traceback so the caller
    sees *where* the worker blew up, not just that it did.
    """

    def __init__(self, message: str, *,
                 worker_traceback: str | None = None) -> None:
        super().__init__(message)
        self.worker_traceback = worker_traceback


class BackpressureError(SessionError):
    """Raised by ingestion under the ``"error"`` backpressure policy."""


@dataclass(frozen=True)
class SessionConfig:
    """Everything that defines one session (and survives its checkpoint)."""

    name: str
    threshold: float
    decay: float
    #: Owning tenant for quota accounting and fairness under the pooled
    #: scheduler; sessions served by the legacy thread-per-session path
    #: keep the default.  Travels in the checkpoint envelope, so an
    #: evicted session resumes under the same tenant.
    tenant: str = "default"
    algorithm: str = "STR-L2"
    backend: str | None = None
    workers: int | None = None
    shard_executor: str = "serial"
    approx: str | None = None
    queue_max: int = 4096
    batch_max_items: int = 128
    batch_max_delay: float = 0.05
    backpressure: str = "block"
    normalize: bool = True
    results_capacity: int = 100_000
    checkpoint_every_items: int | None = None
    checkpoint_every_seconds: float | None = None
    sink_retries: int = 3
    #: Bounded window backing the per-item latency percentiles; old
    #: checkpoints without the field restore at the default.
    latency_window: int = 65536

    def __post_init__(self) -> None:
        if self.sink_retries < 0:
            raise SessionError(
                f"sink_retries must be >= 0, got {self.sink_retries}")
        if self.latency_window <= 0:
            raise SessionError(
                f"latency_window must be positive, got {self.latency_window}")
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise SessionError(
                f"unknown backpressure policy {self.backpressure!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}")
        if self.queue_max <= 0:
            raise SessionError(f"queue_max must be positive, got {self.queue_max}")
        if self.batch_max_items <= 0:
            raise SessionError(
                f"batch_max_items must be positive, got {self.batch_max_items}")
        if self.batch_max_delay < 0:
            raise SessionError(
                f"batch_max_delay must be >= 0, got {self.batch_max_delay}")
        parse_algorithm(self.algorithm)  # fail fast on unknown algorithms

    def as_dict(self) -> dict[str, Any]:
        """Plain-dictionary form (checkpoint envelope, wire, stats)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SessionConfig":
        """Rebuild a config from :meth:`as_dict` output (unknown keys ignored)."""
        fields = {name for name in cls.__dataclass_fields__}  # noqa: C416
        return cls(**{key: value for key, value in payload.items()
                      if key in fields})


class JoinSession:
    """One live streaming join fed through a bounded queue by one worker.

    Lifecycle: ``active`` → (``drain()``, briefly ``draining``) →
    ``drained`` → (``close()``) → ``closed``; a worker exception moves it
    to ``failed`` and a simulated crash (:meth:`kill`) to ``killed``.
    All public methods are thread-safe; pairs stream out through
    ``session.results`` (the built-in :class:`MemorySink` cursor) and any
    extra sinks.
    """

    def __init__(self, config: SessionConfig, *,
                 sinks: Sequence[ResultSink] | None = None,
                 checkpoint_path: str | Path | None = None,
                 fault_injector=None,
                 scheduler=None,
                 _join=None) -> None:
        self.config = config
        self._fault_injector = fault_injector
        #: When set, the session is a *schedulable unit*: it never spawns
        #: its own worker thread; a worker pool runs :meth:`run_quantum`
        #: whenever the scheduler's ready queue hands the session out.
        #: The scheduler only needs one method: ``notify(session)``,
        #: called (outside the session lock) whenever work is enqueued.
        self._scheduler = scheduler
        #: Scheduler-owned run state; mutated only under the ready
        #: queue's lock (see ``repro.service.scheduler.ready``).
        self.run_state = "thread" if scheduler is None else "idle"
        framework_name, _ = parse_algorithm(config.algorithm)
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        if self.checkpoint_path and framework_name != "STR":
            raise SessionError(
                f"only STR sessions are checkpointable (got {config.algorithm!r}); "
                "drop the checkpoint path or use a STR algorithm")
        if self.checkpoint_path and config.workers is not None:
            raise SessionError(
                "sharded sessions (workers=N) are not checkpointable yet; "
                "drop the checkpoint path or run single-process")
        # Worker faults reach the sharded engine only when there are real
        # worker processes to break; other sessions ignore that part of
        # the plan (sink/sever faults are injected at this layer instead).
        join_faults = None
        if (fault_injector is not None and config.workers is not None
                and config.shard_executor == "process"
                and fault_injector.plan.worker_events):
            join_faults = fault_injector
        self.join = _join if _join is not None else create_join(
            config.algorithm, config.threshold, config.decay,
            backend=config.backend, workers=config.workers,
            shard_executor=config.shard_executor, approx=config.approx,
            fault_plan=join_faults)
        self.results = MemorySink(capacity=config.results_capacity)
        self.sinks: list[ResultSink] = [self.results, *(sinks or [])]
        self.latency = LatencyStats(window=config.latency_window)
        # Hot-path instrument handles bound once (labels are per-tenant —
        # bounded cardinality — with per-session series left to the
        # scrape-time collectors in the service layer).
        self._obs_batch_seconds = None
        self._obs_vectors = self._obs_pairs = self._obs_batches = None
        if obs.enabled():
            registry = obs.get_registry()
            self._obs_batch_seconds = registry.histogram(
                "sssj_batch_seconds",
                "Session micro-batch processing time (seconds).",
                ("tenant",)).labels(tenant=config.tenant)
            self._obs_vectors = registry.counter(
                "sssj_session_vectors_total",
                "Vectors processed through session micro-batches.",
                ("tenant",)).labels(tenant=config.tenant)
            self._obs_pairs = registry.counter(
                "sssj_session_pairs_total",
                "Similar pairs emitted to session sinks.",
                ("tenant",)).labels(tenant=config.tenant)
            self._obs_batches = registry.counter(
                "sssj_session_batches_total",
                "Session micro-batches flushed.",
                ("tenant",)).labels(tenant=config.tenant)
        self.status = "active"
        self.resumed = _join is not None
        self.accepted = 0
        self.dropped = 0
        self.processed = self.join.stats.vectors_processed
        self.pairs_emitted = 0
        self.error: str | None = None
        self.error_traceback: str | None = None
        #: Vectors consumed (accepted + policy-dropped) since the session
        #: started — the dedup anchor for idempotent, sequence-numbered
        #: ingest across client reconnects.
        self.ingest_seq = 0
        self.deduped = 0
        self.sink_retried = 0
        self.batches_flushed = 0
        #: Last ingest or processing activity (monotonic clock) — the
        #: idle measure the scheduler's checkpoint-evict sweeper uses.
        self.last_activity = time.monotonic()
        #: Cached observability snapshot taken at eviction, so ``stats()``
        #: keeps answering after the join engine is dropped.
        self._evicted_stats: dict[str, Any] | None = None
        self.started_at = time.monotonic()
        self._queue: deque[tuple] = deque()
        self._queued_vectors = 0
        self._last_timestamp = float("-inf")
        self._last_processed_timestamp = float("-inf")
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._worker: threading.Thread | None = None
        self._stop = False
        self._checkpointer: PeriodicCheckpointer | None = None
        if self.checkpoint_path is not None:
            self._checkpointer = PeriodicCheckpointer(
                self.join, self.checkpoint_path,
                every_vectors=config.checkpoint_every_items,
                every_seconds=config.checkpoint_every_seconds,
                save=self._write_envelope)

    # -- checkpoint envelope ---------------------------------------------------

    def _write_envelope(self, join, path: Path, *,
                        status: str | None = None) -> Path:
        """Snapshot the join plus the session/sink state (worker thread only)."""
        with obs.span("checkpoint", session=self.config.name,
                      tenant=self.config.tenant):
            return self._write_envelope_inner(join, path, status=status)

    def _write_envelope_inner(self, join, path: Path, *,
                              status: str | None = None) -> Path:
        payload = {
            "service_version": SERVICE_CHECKPOINT_VERSION,
            "config": self.config.as_dict(),
            "status": status or self.status,
            "processed": self.processed,
            "last_timestamp": (self._last_processed_timestamp
                               if self.processed else None),
            "accepted": self.accepted,
            "dropped": self.dropped,
            # Only trusted by resume() when the envelope was written at a
            # queue-empty barrier (status "evicted"): a mid-stream
            # checkpoint's counters include vectors still queued, which a
            # crash loses.
            "ingest_seq": self.ingest_seq,
            "deduped": self.deduped,
            "pairs_emitted": self.pairs_emitted,
            "join": snapshot_join(join),
            "sinks": [{"spec": sink.spec(), "position": sink.position()}
                      for sink in self.sinks],
        }
        return atomic_write_json(path, payload)

    @classmethod
    def resume(cls, checkpoint_path: str | Path, *,
               extra_sinks: Sequence[ResultSink] | None = None,
               scheduler=None) -> "JoinSession":
        """Rebuild a session from its checkpoint after a crash or restart.

        The join state is restored exactly; reconstructible sinks (JSONL)
        are rebuilt and rolled back to their checkpointed positions, so
        pairs they wrote *after* the checkpoint are discarded and
        re-derived when the producer re-feeds the uncovered vectors
        (``session.processed`` tells it where to resume from).  Volatile
        sinks (callback) cannot be rebuilt from a file — pass live
        replacements via ``extra_sinks``.

        An envelope written by :meth:`try_evict` (status ``"evicted"``) is
        a queue-empty barrier, not a crash: nothing was in flight, so the
        ingest counters (``ingest_seq``, ``accepted``, ``deduped``) are
        restored exactly and clients continue their sequence numbers
        transparently — the evict/restore cycle is invisible on the wire.
        """
        checkpoint_path = Path(checkpoint_path)
        with open(checkpoint_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        version = payload.get("service_version")
        if version != SERVICE_CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported service checkpoint version: {version!r}")
        config = SessionConfig.from_dict(payload["config"])
        join = restore_join(payload["join"])
        sink_states = payload.get("sinks", [])
        # Rebuild reconstructible sinks and roll each back to its
        # checkpointed position (the JSONL sink truncates pairs written
        # after the checkpoint).  Volatile sinks (callbacks) cannot be
        # rebuilt from a file — the caller re-attaches live replacements
        # via ``extra_sinks``.
        sinks: list[ResultSink] = []
        restores: list[tuple[ResultSink, dict[str, Any]]] = []
        for state in sink_states[1:]:  # element 0 is the built-in memory sink
            spec = state.get("spec")
            if spec is None:
                continue
            sink = create_sink(spec)
            sinks.append(sink)
            if state.get("position") is not None:
                restores.append((sink, state["position"]))
        sinks.extend(extra_sinks or [])
        session = cls(config, sinks=sinks, checkpoint_path=checkpoint_path,
                      scheduler=scheduler, _join=join)
        if payload.get("status") == "drained":
            # The join was flushed before this checkpoint; the session
            # comes back readable but refuses further ingestion.
            session.status = "drained"
        session.processed = int(payload.get("processed", 0))
        if payload.get("status") == "evicted":
            # Barrier envelope: the queue was empty when it was written,
            # so every consumed vector is covered — restore the ingest
            # counters exactly and let clients continue where they were.
            session.accepted = int(payload.get("accepted",
                                               session.processed))
            session.ingest_seq = int(payload.get("ingest_seq",
                                                 session.processed))
            session.deduped = int(payload.get("deduped", 0))
        else:
            # Vectors accepted but still queued at the crash were lost
            # with the queue; only the processed ones count as accepted
            # now.  The producer re-feeds from `processed`; the open
            # response tells the client to reset its sequence counter to
            # match.
            session.accepted = session.processed
            session.ingest_seq = session.processed
        session.dropped = int(payload.get("dropped", 0))
        session.pairs_emitted = int(payload.get("pairs_emitted", 0))
        # The checkpoint covers the stream up to this timestamp; re-fed
        # vectors must continue from there (ordering stays enforced).
        last_timestamp = payload.get("last_timestamp")
        if last_timestamp is not None:
            session._last_timestamp = float(last_timestamp)
            session._last_processed_timestamp = float(last_timestamp)
        if sink_states and sink_states[0].get("position") is not None:
            session.results.restore(sink_states[0]["position"])
        for sink, position in restores:
            sink.restore(position)
        return session

    # -- ingestion -------------------------------------------------------------

    def start(self) -> None:
        """Start the worker thread (idempotent; ingest() starts it lazily).

        A scheduled session never owns a thread — the worker pool runs it
        — so this is a no-op beyond nudging the scheduler in case work is
        already queued (e.g. right after a restore).
        """
        if self._scheduler is not None:
            if self.has_pending():
                self._scheduler.notify(self)
            return
        with self._lock:
            if self._worker is None and self.status == "active":
                self._worker = threading.Thread(
                    target=self._worker_loop,
                    name=f"sssj-session-{self.config.name}", daemon=True)
                self._worker.start()

    def has_pending(self) -> bool:
        """Whether any queued work (vectors or control tokens) awaits a run.

        Called by the scheduler *while holding the ready-queue lock* to
        decide idle-vs-ready at quantum end; the lock order is always
        ready-queue lock → session lock, never the reverse.
        """
        with self._lock:
            return bool(self._queue) and not self._stop

    def _check_worker(self) -> None:
        """Surface a silently-dead worker thread as a failed session.

        The worker loop reports its own exceptions, but a death it could
        not report (e.g. the interpreter tore the thread down) would
        otherwise leave the session "active" while nothing drains the
        queue — producers would fill it to backpressure and stall
        forever.  Detecting the dead thread here turns the very next op
        into an immediate :class:`SessionError` instead.
        """
        worker = self._worker
        if worker is None or worker.is_alive():
            return
        with self._lock:
            if self.status == "active":
                self.status = "failed"
                self.error = (self.error
                              or "worker thread died without reporting")
                self._not_full.notify_all()

    def _state_error(self) -> SessionError:
        return SessionError(
            f"session {self.config.name!r} is {self.status}"
            + (f": {self.error}" if self.error else ""),
            worker_traceback=self.error_traceback)

    def raise_if_failed(self) -> None:
        """Raise the session's failure (with the worker traceback) if any."""
        self._check_worker()
        if self.status in ("failed", "killed"):
            raise self._state_error()

    def ingest(self, vectors: Iterable[SparseVector], *,
               seq: int | None = None) -> tuple[int, int]:
        """Enqueue vectors for processing; return ``(accepted, dropped)``.

        Applies the session's backpressure policy when the bounded queue
        is full.  Order is preserved: vectors are processed in exactly
        the order they were accepted.  Timestamps must be non-decreasing
        across the whole session (:class:`StreamOrderError` otherwise) —
        enforced here, at the boundary, so a misbehaving producer is told
        immediately instead of poisoning the worker.

        ``seq`` makes ingestion idempotent across reconnects: it states
        how many vectors the producer had already sent before this batch.
        A batch (or prefix of one) the session already consumed — the
        resend of a request whose ack was lost — is acknowledged and
        dropped instead of being double-processed (counted in
        ``deduped``); a ``seq`` beyond the session's counter means
        vectors were lost in between and raises immediately.
        """
        self.start()
        self._check_worker()
        accepted = dropped = 0
        if seq is not None:
            if seq < 0:
                raise SessionError(f"ingest seq must be >= 0, got {seq}")
            vectors = list(vectors)
            with self._lock:
                expected = self.ingest_seq
                if seq > expected:
                    raise SessionError(
                        f"ingest sequence gap for session "
                        f"{self.config.name!r}: batch starts at seq {seq} "
                        f"but only {expected} vectors were received — the "
                        "producer must re-feed from the session's counter")
                skip = min(expected - seq, len(vectors))
                if skip:
                    self.deduped += skip
            if skip == len(vectors):
                return 0, 0  # full duplicate: ack without re-processing
            vectors = vectors[skip:]
        for vector in vectors:
            enqueued_at = time.monotonic()
            with self._not_full:
                notified_block = False
                while (self.config.backpressure == "block"
                       and self._queued_vectors >= self.config.queue_max
                       and self.status == "active"):
                    if self._scheduler is not None and not notified_block:
                        # The end-of-call notify below has not run yet, so
                        # the scheduler may not know this burst exists —
                        # nudge it before blocking, or nothing would ever
                        # drain the queue.  The session lock is dropped
                        # first (lock order is ready-queue → session,
                        # never the reverse).
                        self._not_full.release()
                        try:
                            self._scheduler.notify(self)
                        finally:
                            self._not_full.acquire()
                        notified_block = True
                        continue  # re-check the queue after the gap
                    self._not_full.wait(0.05)
                if self.status != "active":
                    raise self._state_error()
                # Checked and advanced under the lock, atomically with the
                # append: concurrent producers cannot interleave an
                # out-of-order pair of vectors into the queue — the slower
                # producer is rejected here instead of failing the worker.
                if vector.timestamp < self._last_timestamp:
                    raise StreamOrderError(
                        f"vector {vector.vector_id} arrived at "
                        f"t={vector.timestamp} after t={self._last_timestamp}; "
                        "session streams must have non-decreasing timestamps")
                self._last_timestamp = vector.timestamp
                if self._queued_vectors >= self.config.queue_max:
                    if self.config.backpressure == "drop":
                        dropped += 1
                        self.dropped += 1
                        self.ingest_seq += 1  # consumed, even if discarded
                        continue
                    raise BackpressureError(
                        f"session {self.config.name!r} queue is full "
                        f"({self.config.queue_max} vectors) and the policy is 'error'")
                self._queue.append(("vec", vector, enqueued_at))
                self._queued_vectors += 1
                accepted += 1
                self.accepted += 1
                self.ingest_seq += 1
                self._not_empty.notify()
        if accepted or dropped:
            self.last_activity = time.monotonic()
        if accepted and self._scheduler is not None:
            self._scheduler.notify(self)
        return accepted, dropped

    def _enqueue_control(self, kind: str) -> tuple[dict, threading.Event]:
        reply: dict[str, Any] = {}
        done = threading.Event()
        with self._not_empty:
            if self.status != "active":
                raise self._state_error()
            self._queue.append(("ctl", kind, reply, done))
            self._not_empty.notify()
        if self._scheduler is not None:
            self._scheduler.notify(self)
        return reply, done

    def _await_control(self, done: threading.Event, reply: dict,
                       timeout: float | None) -> dict:
        deadline = None if timeout is None else time.monotonic() + timeout
        while not done.wait(0.05):
            self._check_worker()
            if self.status in ("failed", "killed"):
                raise SessionError(
                    f"session {self.config.name!r} {self.status}"
                    + (f": {self.error}" if self.error else ""),
                    worker_traceback=self.error_traceback)
            if deadline is not None and time.monotonic() > deadline:
                raise SessionError(
                    f"timed out waiting for session {self.config.name!r}")
        if "error" in reply:
            raise SessionError(reply["error"])
        return reply

    # -- worker ----------------------------------------------------------------

    def _collect_batch(self) -> list[tuple] | tuple | None:
        """Next unit of work: a vector micro-batch, a control token, or None.

        Returns ``None`` when the session was stopped; a 4-tuple for a
        control token (which acts as a queue barrier — every vector ahead
        of it has already been returned in earlier batches); otherwise a
        list of ``("vec", vector, enqueued_at)`` entries, flushed at
        ``batch_max_items`` items or ``batch_max_delay`` seconds after
        the first item, whichever comes first.
        """
        with self._not_empty:
            while not self._queue and not self._stop:
                self._not_empty.wait(0.05)
            if self._stop:
                return None
            head = self._queue.popleft()
            if head[0] == "ctl":
                return head
            self._queued_vectors -= 1
            self._not_full.notify()
            batch = [head]
            deadline = time.monotonic() + self.config.batch_max_delay
            while len(batch) < self.config.batch_max_items:
                while not self._queue and not self._stop:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return batch
                    self._not_empty.wait(min(remaining, 0.05))
                if self._stop or not self._queue:
                    return batch
                if self._queue[0][0] == "ctl":
                    return batch  # barrier: finish these vectors first
                batch.append(self._queue.popleft())
                self._queued_vectors -= 1
                self._not_full.notify()
            return batch

    def _emit(self, pairs: list[SimilarPair]) -> None:
        if not pairs:
            return
        for sink in self.sinks:
            self._emit_to_sink(sink, pairs)
        self.pairs_emitted += len(pairs)

    def _emit_to_sink(self, sink: ResultSink, pairs: list[SimilarPair]) -> None:
        """Emit with bounded retry: transient sink failures (a full disk
        that clears, a flaky remote) get ``config.sink_retries`` more
        chances with exponential backoff before they fail the session."""
        retries = self.config.sink_retries
        delay = 0.05
        for attempt in range(retries + 1):
            try:
                if (self._fault_injector is not None
                        and self._fault_injector.sink_fail_due()):
                    raise SinkError("injected sink failure")
                sink.emit(pairs)
                return
            except Exception:
                if attempt >= retries:
                    raise
                self.sink_retried += 1
                time.sleep(delay)
                delay = min(delay * 2, 1.0)

    def _worker_loop(self) -> None:
        try:
            while True:
                work = self._collect_batch()
                if work is None:
                    break
                if isinstance(work, tuple):  # control token
                    if self._handle_control(work):
                        break
                    continue
                self._process_vectors(work)
                if self._checkpointer is not None:
                    self._checkpointer.tick()
        except BaseException as error:  # noqa: BLE001 - reported via status
            self._fail(error)
        finally:
            self._flush_pending_controls()

    def _process_vectors(self, work: list[tuple]) -> None:
        """Feed one micro-batch of queued vectors through the join."""
        started = time.perf_counter()
        pairs: list[SimilarPair] = []
        with obs.span("batch", session=self.config.name,
                      tenant=self.config.tenant) as span:
            for _, vector, enqueued_at in work:
                pairs.extend(self.join.process(vector))
                self.latency.record(time.monotonic() - enqueued_at)
                self.processed += 1
                self._last_processed_timestamp = vector.timestamp
            self._emit(pairs)
            span.note(items=len(work), pairs=len(pairs))
        self.batches_flushed += 1
        if self._obs_batches is not None:
            self._obs_batch_seconds.observe(time.perf_counter() - started)
            self._obs_vectors.inc(len(work))
            self._obs_pairs.inc(len(pairs))
            self._obs_batches.inc()

    def _flush_pending_controls(self) -> None:
        """Answer control tokens that will never be handled (worker exiting)."""
        with self._lock:
            for item in self._queue:
                if item[0] == "ctl" and not item[3].is_set():
                    item[2].setdefault(
                        "error", f"session {self.config.name!r} is {self.status}")
                    item[3].set()
            self._queue = deque(
                item for item in self._queue if item[0] != "ctl")

    def _process_queue_remainder(self, final_status: str) -> None:
        """Stop accepting, then process every vector still in the queue.

        A producer racing a drain/close can append vectors *behind* the
        control token (its status check passed before the flip); they
        were reported as accepted, so they must be processed, not
        silently dropped.  Flipping the status first closes the race —
        afterwards the one extraction below sees the final queue.
        """
        with self._lock:
            self.status = final_status
            leftovers = [item for item in self._queue if item[0] == "vec"]
            self._queue = deque(item for item in self._queue
                                if item[0] != "vec")
            self._queued_vectors = 0
            self._not_full.notify_all()
        if leftovers:
            self._process_vectors(leftovers)

    def _handle_control(self, token: tuple) -> bool:
        """Run one control token; return True when the worker should exit."""
        _, kind, reply, done = token
        try:
            if kind == "checkpoint":
                if self._checkpointer is None:
                    reply["error"] = (
                        f"session {self.config.name!r} has no checkpoint path")
                else:
                    reply["path"] = str(self._checkpointer.tick(force=True))
            elif kind == "drain":
                # Transitional status: ingestion is already refused, but
                # readers only see "drained" once the flush pairs landed.
                self._process_queue_remainder("draining")
                self._emit(self.join.flush())
                with self._lock:
                    self.status = "drained"
                if self._checkpointer is not None:
                    reply["checkpoint"] = str(self._checkpointer.tick(force=True))
                for sink in self.sinks:
                    sink.flush()
                reply["processed"] = self.processed
                reply["pairs_emitted"] = self.pairs_emitted
            elif kind == "stop":
                self._process_queue_remainder("closed")
                if self._checkpointer is not None:
                    reply["checkpoint"] = str(self._checkpointer.tick(force=True))
                return True
            else:  # pragma: no cover - internal invariant
                reply["error"] = f"unknown control token {kind!r}"
        finally:
            done.set()
        return kind == "drain"

    # -- scheduled (pooled) execution ------------------------------------------

    def _collect_ready(self, limit: int) -> list[tuple] | tuple | None:
        """Non-blocking :meth:`_collect_batch`: whatever is queued, now.

        Pool workers must never sleep inside one session (that would
        stall every other ready session behind them), so there is no
        ``batch_max_delay`` wait here — the scheduler's visit cadence
        plays that role.  Returns ``None`` when nothing is queued, a
        control token 4-tuple, or up to ``limit`` vector entries.
        """
        with self._lock:
            if self._stop or not self._queue:
                return None
            head = self._queue.popleft()
            if head[0] == "ctl":
                return head
            self._queued_vectors -= 1
            batch = [head]
            while (len(batch) < limit and self._queue
                   and self._queue[0][0] == "vec"):
                batch.append(self._queue.popleft())
                self._queued_vectors -= 1
            self._not_full.notify_all()
            return batch

    def run_quantum(self, *, max_batches: int = 4,
                    batch_items: int | None = None) -> tuple[bool, int]:
        """Run up to ``max_batches`` micro-batches on the caller's thread.

        The scheduled-mode replacement for :meth:`_worker_loop`: a pool
        worker calls this after popping the session from the ready queue
        (which guarantees exclusive execution — at most one worker runs a
        given session at any time, so the FIFO determinism contract holds
        under any pool size).  Control tokens are executed in queue order
        exactly as the dedicated worker would.  ``batch_items`` overrides
        the configured micro-batch size (the adaptive batcher's lever).

        Returns ``(more_pending, vectors_processed)``; ``more_pending``
        is advisory — the pool re-checks under the ready-queue lock.
        """
        limit = batch_items if batch_items else self.config.batch_max_items
        processed = 0
        try:
            for _ in range(max_batches):
                work = self._collect_ready(max(1, limit))
                if work is None:
                    break
                if isinstance(work, tuple):  # control token
                    if self._handle_control(work):
                        self._flush_pending_controls()
                        return False, processed
                    continue
                self._process_vectors(work)
                processed += len(work)
                if self._checkpointer is not None:
                    self._checkpointer.tick()
        except BaseException as error:  # noqa: BLE001 - reported via status
            self._fail(error)
            self._flush_pending_controls()
            return False, processed
        if processed:
            self.last_activity = time.monotonic()
        with self._lock:
            more = bool(self._queue) and not self._stop
        return more, processed

    def try_evict(self) -> Path | None:
        """Checkpoint-and-evict an idle session; return the envelope path.

        Only callable when the scheduler has claimed the session (run
        state ``"evicted"``, so no pool worker can pick it up) and only
        succeeds at a queue-empty barrier: with nothing in flight the
        envelope covers every consumed vector, the join engine and the
        retained result pairs can be dropped entirely, and a later
        :meth:`resume` restores the ingest counters exactly — clients
        never notice the round trip.  Returns ``None`` (and leaves the
        session live) when there is no checkpoint path or work snuck into
        the queue; concurrent ingests that lose the race see the
        transitional ``"evicting"`` (then ``"evicted"``) status and
        trigger the service's lazy restore.  ``"evicted"`` is published
        last, once the engine is released, so an observed-evicted
        session never holds a join.
        """
        if self.checkpoint_path is None or self.join is None:
            return None
        with self._lock:
            if self.status != "active" or self._queue or self._queued_vectors:
                return None
            # Transitional fence: ingest sees a non-active status and
            # raises (routing the caller to the service's restore path),
            # but the public "evicted" state is only published below,
            # once the engine is gone — an observer that reads status
            # "evicted" may rely on the placeholder holding no join.
            self.status = "evicting"
        try:
            # The envelope is stamped "evicted" (the barrier contract
            # resume() trusts), not the transitional in-memory status.
            path = self._write_envelope(self.join, self.checkpoint_path,
                                        status="evicted")
        except BaseException:
            with self._lock:
                if self.status == "evicting":
                    self.status = "active"
            raise
        self._evicted_stats = {
            "counters": self.join.stats.as_dict(),
            "backend": getattr(self.join, "backend_name",
                               self.config.backend),
            "approx": getattr(self.join, "approx", self.config.approx),
            # Wall-clock eviction time: stats() for the placeholder must
            # say *when* the engine was dropped, not pretend it's live.
            "evicted_at": time.time(),
        }
        self._checkpointer = None
        closer = getattr(self.join, "close", None)
        if closer is not None:
            closer()
        self.join = None
        # Free the retained pairs but keep the cursor base monotonic:
        # readers that come back after a restore see ``first_retained``
        # jump, exactly as after a crash recovery.
        self.results.restore(self.results.position())
        for sink in self.sinks:
            if sink is not self.results:
                sink.close()
        with self._lock:
            if self.status == "evicting":  # a concurrent close() wins
                self.status = "evicted"
        return path

    def _fail(self, error: BaseException) -> None:
        with self._lock:
            self.status = "failed"
            self.error = f"{type(error).__name__}: {error}"
            self.error_traceback = _traceback.format_exc()
            self._not_full.notify_all()
            # Unblock any control waiters.
            for item in self._queue:
                if item[0] == "ctl":
                    item[2]["error"] = self.error
                    item[3].set()
            self._queue.clear()
            self._queued_vectors = 0

    # -- lifecycle -------------------------------------------------------------

    def checkpoint_now(self, timeout: float | None = 30.0) -> Path:
        """Barrier checkpoint: covers every vector ingested before the call."""
        self.start()
        reply, done = self._enqueue_control("checkpoint")
        self._await_control(done, reply, timeout)
        return Path(reply["path"])

    def drain(self, timeout: float | None = 60.0) -> dict[str, Any]:
        """Process everything queued, flush the join, checkpoint, stop.

        Returns ``{"processed": ..., "pairs_emitted": ..., "checkpoint": ...}``.
        The session refuses further ingestion afterwards; results remain
        readable through the sinks.
        """
        self.start()
        reply, done = self._enqueue_control("drain")
        return dict(self._await_control(done, reply, timeout))

    def close(self, timeout: float | None = 30.0) -> None:
        """Stop the session (final checkpoint if configured) and free sinks."""
        with self._lock:
            worker = self._worker
            still_active = self.status == "active"
        # A scheduled session has no thread of its own, but the pool will
        # execute the stop token (the service keeps the pool running
        # until every session is closed).
        runnable = ((worker is not None and worker.is_alive())
                    or self._scheduler is not None)
        if runnable and still_active:
            try:
                reply, done = self._enqueue_control("stop")
                self._await_control(done, reply, timeout)
            except SessionError:
                pass  # already failed/killed: fall through to teardown
        with self._lock:
            self._stop = True
            if self.status in ("active", "drained", "evicting", "evicted"):
                self.status = "closed"
            self._not_empty.notify_all()
            self._not_full.notify_all()
        if worker is not None and worker.is_alive():
            worker.join(timeout=5.0)
        for sink in self.sinks:
            sink.close()
        closer = getattr(self.join, "close", None)
        if closer is not None:  # sharded joins own worker processes
            closer()

    def kill(self) -> None:
        """Simulate a crash: stop immediately, no flush, no checkpoint.

        Used by the recovery tests — everything after the last checkpoint
        is lost, exactly as in a real ``kill -9``.
        """
        with self._lock:
            self._stop = True
            self.status = "killed"
            self._not_empty.notify_all()
            self._not_full.notify_all()
        if self._worker is not None and self._worker.is_alive():
            self._worker.join(timeout=5.0)

    # -- observability ---------------------------------------------------------

    @property
    def queued(self) -> int:
        """Vectors currently waiting in the bounded queue."""
        with self._lock:
            return self._queued_vectors

    def stats(self) -> dict[str, Any]:
        """Live counters + latency percentiles (the ``stats`` endpoint row).

        Works on an evicted placeholder too (the engine is gone, but the
        snapshot cached by :meth:`try_evict` keeps the counters visible)
        — observability must never force a restore.
        """
        with self._lock:
            queued = self._queued_vectors
        evicted_at = None
        if self.join is None:
            cached = self._evicted_stats or {}
            backend = cached.get("backend", self.config.backend)
            approx = cached.get("approx", self.config.approx)
            counters = cached.get("counters", {})
            evicted_at = cached.get("evicted_at")
        else:
            backend = getattr(self.join, "backend_name", self.config.backend)
            approx = getattr(self.join, "approx", self.config.approx)
            counters = self.join.stats.as_dict()
        return {
            "name": self.config.name,
            "tenant": self.config.tenant,
            "status": self.status,
            "run_state": self.run_state,
            "algorithm": self.config.algorithm,
            "threshold": self.config.threshold,
            "decay": self.config.decay,
            "backend": backend,
            "workers": self.config.workers,
            # Canonical spec from the live join (None on an exact session).
            "approx": approx,
            "backpressure": self.config.backpressure,
            "queue_max": self.config.queue_max,
            "queued": queued,
            "accepted": self.accepted,
            "dropped": self.dropped,
            "deduped": self.deduped,
            "ingest_seq": self.ingest_seq,
            "processed": self.processed,
            "pairs_emitted": self.pairs_emitted,
            "batches_flushed": self.batches_flushed,
            "sink_retried": self.sink_retried,
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "evicted_at": evicted_at,
            "resumed": self.resumed,
            "error": self.error,
            "latency": self.latency.summary(),
            "counters": counters,
            "sinks": [sink.describe() for sink in self.sinks],
        }
