"""Client for the join service's NDJSON socket protocol.

Backs the ``sssj ingest`` / ``sssj results`` / ``sssj drain`` commands
and is a convenient way to drive the service from another Python
process::

    with ServiceClient(port=7788) as client:
        client.open_session("dedup", theta=0.7, decay=0.01)
        client.ingest("dedup", vectors)
        summary = client.drain("dedup")

Every method sends one request line and reads one response line; an
``ok: false`` response raises :class:`ServiceClientError` carrying the
full response for inspection.

Fault tolerance: when ``reconnect`` is enabled (the default), a dropped
connection or timed-out read is retried with capped exponential backoff
plus jitter — the client reconnects and resends the request.  Resending
is safe because every operation is idempotent on the server: ingest
carries a per-session monotonic sequence number (the count of vectors
sent so far), so a resend of a batch whose ack was lost is acknowledged
and deduplicated instead of double-processed; drain/close return their
summary again.  The sequence counter is synced from the server's
``open`` response, so a *restarted* client (or server) agrees with the
session about how much of the stream has been consumed.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Iterable, Iterator

from repro.core.results import SimilarPair
from repro.core.vector import SparseVector
from repro.exceptions import SSSJError
from repro.service.protocol import (
    dump_line,
    encode_vector,
    pair_from_wire,
    parse_line,
)

__all__ = ["ServiceClientError", "ServiceClient", "RETRYABLE_OPS"]

#: Operations safe to resend after a reconnect.  All of them: reads are
#: side-effect free, ``ingest`` is protected by sequence numbers, and
#: ``open``/``drain``/``close``/``shutdown`` are idempotent server-side.
RETRYABLE_OPS = frozenset(
    {"ping", "open", "ingest", "results", "stats", "metrics", "sessions",
     "evict", "checkpoint", "drain", "close", "shutdown"})


class ServiceClientError(SSSJError):
    """An ``ok: false`` response (the response dict is in ``.response``)."""

    def __init__(self, message: str, response: dict[str, Any] | None = None) -> None:
        super().__init__(message)
        self.response = response or {}


class ServiceClient:
    """A blocking NDJSON client over one TCP connection (auto-reconnect).

    ``max_retries`` reconnect attempts per request, with backoff delays of
    ``backoff_base * 2**attempt`` seconds capped at ``backoff_cap``, each
    scaled by uniform jitter in ``[0.5, 1.0)`` so a fleet of clients does
    not reconnect in lockstep.  ``reconnect=False`` restores strict
    single-connection behaviour (any transport error raises).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7788, *,
                 timeout: float = 60.0, reconnect: bool = True,
                 max_retries: int = 5, backoff_base: float = 0.05,
                 backoff_cap: float = 2.0, fault_injector=None) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._reconnect = reconnect
        self._max_retries = max_retries
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._faults = fault_injector
        self._rng = random.Random()  # jitter only — never affects results
        self._sock: socket.socket | None = None
        self._file = None
        #: Per-session count of vectors sent, synced from the server on
        #: ``open`` — the ``seq`` stamped onto every ingest request.
        self._seq: dict[str, int] = {}
        #: Reconnects performed over the client's lifetime (observability).
        self.reconnects = 0
        self._connect()

    # -- plumbing --------------------------------------------------------------

    def _connect(self) -> None:
        self._sock = socket.create_connection((self._host, self._port),
                                              timeout=self._timeout)
        self._file = self._sock.makefile("rwb")

    def _teardown(self) -> None:
        for closer in (self._file, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:  # pragma: no cover - defensive
                    pass
        self._file = None
        self._sock = None

    def request(self, op: str, *, check: bool = True,
                **fields: Any) -> dict[str, Any]:
        """Send one request and return the response dictionary.

        Transport failures (dropped connection, timed-out read) on a
        retryable op are retried with capped exponential backoff and
        jitter; when retries are exhausted (or ``reconnect=False``) they
        raise :class:`ServiceClientError` chained to the transport error.
        """
        payload = dump_line({"op": op, **fields})
        attempt = 0
        while True:
            try:
                if self._file is None:
                    self._connect()
                self._file.write(payload)
                self._file.flush()
                if (self._faults is not None and op == "ingest"
                        and self._faults.client_sever_due()):
                    # Injected sever: the request may have been applied
                    # but its ack is lost — exactly what a mid-ingest
                    # network partition looks like.
                    self._teardown()
                    raise ConnectionResetError(
                        "fault injection: connection severed after send")
                line = self._file.readline()
                if not line:
                    raise ConnectionResetError(
                        f"server closed the connection during {op!r}")
            except (ConnectionError, TimeoutError, OSError) as error:
                self._teardown()
                retryable = (self._reconnect and op in RETRYABLE_OPS
                             and attempt < self._max_retries)
                if not retryable:
                    raise ServiceClientError(
                        f"request {op!r} failed after {attempt + 1} "
                        f"attempt(s): {error}") from error
                delay = min(self._backoff_cap,
                            self._backoff_base * (2 ** attempt))
                time.sleep(delay * (0.5 + self._rng.random() * 0.5))
                attempt += 1
                self.reconnects += 1
                continue
            response = parse_line(line)
            if check and not response.get("ok"):
                raise ServiceClientError(
                    response.get("error", f"request {op!r} failed"), response)
            return response

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    # -- operations ------------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self.request("ping")

    def open_session(self, session: str, *, theta: float, decay: float,
                     **options: Any) -> dict[str, Any]:
        """Open (or resume) a session; see the server docs for options."""
        response = self.request("open", session=session, theta=theta,
                                decay=decay, **options)
        if "ingest_seq" in response:
            self._seq[session] = int(response["ingest_seq"])
        return response

    def ingest(self, session: str, vectors: Iterable[SparseVector], *,
               chunk_size: int = 500) -> dict[str, int]:
        """Stream vectors to the session in chunks; return totals."""
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        totals = {"accepted": 0, "dropped": 0, "deduped": 0}
        chunk: list[list[Any]] = []
        for vector in vectors:
            chunk.append(encode_vector(vector))
            if len(chunk) >= chunk_size:
                self._send_chunk(session, chunk, totals)
                chunk = []
        if chunk:
            self._send_chunk(session, chunk, totals)
        return totals

    def _send_chunk(self, session: str, chunk: list[list[Any]],
                    totals: dict[str, int]) -> None:
        fields: dict[str, Any] = {"session": session, "vectors": chunk}
        if session in self._seq:
            fields["seq"] = self._seq[session]
        response = self.request("ingest", **fields)
        totals["accepted"] += int(response.get("accepted", 0))
        totals["dropped"] += int(response.get("dropped", 0))
        totals["deduped"] += int(response.get("deduped", 0))
        if "ingest_seq" in response:
            self._seq[session] = int(response["ingest_seq"])
        elif session in self._seq:
            self._seq[session] += len(chunk)

    def results(self, session: str, *, cursor: int = 0,
                limit: int | None = None) -> dict[str, Any]:
        """One page of results; pairs are decoded to :class:`SimilarPair`."""
        fields: dict[str, Any] = {"session": session, "cursor": cursor}
        if limit is not None:
            fields["limit"] = limit
        response = self.request("results", **fields)
        response["pairs"] = [pair_from_wire(payload)
                             for payload in response.get("pairs", [])]
        return response

    def iter_results(self, session: str, *, cursor: int = 0,
                     poll_interval: float = 0.05,
                     timeout: float | None = 30.0) -> Iterator[SimilarPair]:
        """Yield pairs as they stream out, until the session drains.

        Follows the memory sink's cursor; returns when the session has
        reached a terminal state and every retained pair has been seen.
        Raises :class:`ServiceClientError` when the reader fell behind
        the sink's retention window (pairs were evicted unseen) — a
        silent gap would defeat the point of following.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            response = self.results(session, cursor=cursor)
            first_retained = int(response.get("first_retained", 0))
            if first_retained > cursor:
                raise ServiceClientError(
                    f"fell behind session {session!r}: pairs "
                    f"[{cursor}, {first_retained}) were evicted from the "
                    "results window before this reader saw them; raise "
                    "results_capacity or attach a durable (jsonl) sink",
                    response)
            yield from response["pairs"]
            cursor = response["cursor"]
            finished = (response["status"] not in ("active", "draining")
                        and not response["pairs"])
            if finished:
                return
            if not response["pairs"]:
                if deadline is not None and time.monotonic() > deadline:
                    raise ServiceClientError(
                        f"timed out following results of {session!r}")
                time.sleep(poll_interval)

    def stats(self, session: str | None = None) -> dict[str, Any]:
        fields = {"session": session} if session else {}
        return self.request("stats", **fields)

    def metrics(self) -> dict[str, Any]:
        """Prometheus text snapshot of the server's metrics registry."""
        return self.request("metrics")

    def sessions(self, tenant: str | None = None) -> dict[str, Any]:
        """One summary row per session, optionally filtered by tenant."""
        fields = {"tenant": tenant} if tenant else {}
        return self.request("sessions", **fields)

    def evict(self, session: str) -> dict[str, Any]:
        """Checkpoint-and-evict an idle session (pooled scheduler only).

        Retry-safe: evicting an already-evicted session succeeds with
        ``already_evicted`` set, so a resend after a lost ack is clean.
        """
        return self.request("evict", session=session)

    def checkpoint(self, session: str) -> dict[str, Any]:
        return self.request("checkpoint", session=session)

    def drain(self, session: str) -> dict[str, Any]:
        return self.request("drain", session=session)

    def close_session(self, session: str) -> dict[str, Any]:
        return self.request("close", session=session)

    def shutdown(self) -> dict[str, Any]:
        return self.request("shutdown")
