"""Client for the join service's NDJSON socket protocol.

Backs the ``sssj ingest`` / ``sssj results`` / ``sssj drain`` commands
and is a convenient way to drive the service from another Python
process::

    with ServiceClient(port=7788) as client:
        client.open_session("dedup", theta=0.7, decay=0.01)
        client.ingest("dedup", vectors)
        summary = client.drain("dedup")

Every method sends one request line and reads one response line; an
``ok: false`` response raises :class:`ServiceClientError` carrying the
full response for inspection.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Iterable, Iterator

from repro.core.results import SimilarPair
from repro.core.vector import SparseVector
from repro.exceptions import SSSJError
from repro.service.protocol import (
    dump_line,
    encode_vector,
    pair_from_wire,
    parse_line,
)

__all__ = ["ServiceClientError", "ServiceClient"]


class ServiceClientError(SSSJError):
    """An ``ok: false`` response (the response dict is in ``.response``)."""

    def __init__(self, message: str, response: dict[str, Any] | None = None) -> None:
        super().__init__(message)
        self.response = response or {}


class ServiceClient:
    """A blocking NDJSON client over one TCP connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7788, *,
                 timeout: float = 60.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # -- plumbing --------------------------------------------------------------

    def request(self, op: str, *, check: bool = True,
                **fields: Any) -> dict[str, Any]:
        """Send one request and return the response dictionary."""
        self._file.write(dump_line({"op": op, **fields}))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceClientError(f"server closed the connection during {op!r}")
        response = parse_line(line)
        if check and not response.get("ok"):
            raise ServiceClientError(
                response.get("error", f"request {op!r} failed"), response)
        return response

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    # -- operations ------------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self.request("ping")

    def open_session(self, session: str, *, theta: float, decay: float,
                     **options: Any) -> dict[str, Any]:
        """Open (or resume) a session; see the server docs for options."""
        return self.request("open", session=session, theta=theta,
                            decay=decay, **options)

    def ingest(self, session: str, vectors: Iterable[SparseVector], *,
               chunk_size: int = 500) -> dict[str, int]:
        """Stream vectors to the session in chunks; return totals."""
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        totals = {"accepted": 0, "dropped": 0}
        chunk: list[list[Any]] = []
        for vector in vectors:
            chunk.append(encode_vector(vector))
            if len(chunk) >= chunk_size:
                self._send_chunk(session, chunk, totals)
                chunk = []
        if chunk:
            self._send_chunk(session, chunk, totals)
        return totals

    def _send_chunk(self, session: str, chunk: list[list[Any]],
                    totals: dict[str, int]) -> None:
        response = self.request("ingest", session=session, vectors=chunk)
        totals["accepted"] += int(response.get("accepted", 0))
        totals["dropped"] += int(response.get("dropped", 0))

    def results(self, session: str, *, cursor: int = 0,
                limit: int | None = None) -> dict[str, Any]:
        """One page of results; pairs are decoded to :class:`SimilarPair`."""
        fields: dict[str, Any] = {"session": session, "cursor": cursor}
        if limit is not None:
            fields["limit"] = limit
        response = self.request("results", **fields)
        response["pairs"] = [pair_from_wire(payload)
                             for payload in response.get("pairs", [])]
        return response

    def iter_results(self, session: str, *, cursor: int = 0,
                     poll_interval: float = 0.05,
                     timeout: float | None = 30.0) -> Iterator[SimilarPair]:
        """Yield pairs as they stream out, until the session drains.

        Follows the memory sink's cursor; returns when the session has
        reached a terminal state and every retained pair has been seen.
        Raises :class:`ServiceClientError` when the reader fell behind
        the sink's retention window (pairs were evicted unseen) — a
        silent gap would defeat the point of following.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            response = self.results(session, cursor=cursor)
            first_retained = int(response.get("first_retained", 0))
            if first_retained > cursor:
                raise ServiceClientError(
                    f"fell behind session {session!r}: pairs "
                    f"[{cursor}, {first_retained}) were evicted from the "
                    "results window before this reader saw them; raise "
                    "results_capacity or attach a durable (jsonl) sink",
                    response)
            yield from response["pairs"]
            cursor = response["cursor"]
            finished = (response["status"] not in ("active", "draining")
                        and not response["pairs"])
            if finished:
                return
            if not response["pairs"]:
                if deadline is not None and time.monotonic() > deadline:
                    raise ServiceClientError(
                        f"timed out following results of {session!r}")
                time.sleep(poll_interval)

    def stats(self, session: str | None = None) -> dict[str, Any]:
        fields = {"session": session} if session else {}
        return self.request("stats", **fields)

    def checkpoint(self, session: str) -> dict[str, Any]:
        return self.request("checkpoint", session=session)

    def drain(self, session: str) -> dict[str, Any]:
        return self.request("drain", session=session)

    def close_session(self, session: str) -> dict[str, Any]:
        return self.request("close", session=session)

    def shutdown(self) -> dict[str, Any]:
        return self.request("shutdown")
