"""Selector-based service transport: every connection on one I/O loop.

The legacy :class:`~repro.service.server.ServiceServer` spends a thread
per client connection — fine for a handful of clients, a scaling wall
for the multi-tenant tier where hundreds of sessions each hold a socket
open.  :class:`SelectorServiceServer` multiplexes all connections over a
single ``selectors`` event loop:

* the loop thread does only non-blocking I/O — accepting, reading bytes
  into per-connection buffers, flushing response bytes out;
* complete NDJSON lines are handed to a small dispatch thread pool that
  runs :meth:`JoinService.handle`.  Dispatch is **serial per
  connection** (a busy flag): a client's requests are answered in the
  order sent, exactly like the thread-per-connection transport, while
  different connections' requests run concurrently;
* dispatch threads never touch the selector — they append to the
  connection's write buffer under its lock and tickle a ``socketpair``
  to wake the loop, which recomputes read/write interest every tick.

The wire protocol, idle ``read_timeout`` semantics, the post-ack
client-sever fault hook, and the ``shutdown`` op behaviour are all
bit-compatible with the threaded transport, so clients (and the chaos
harness) cannot tell the difference.
"""

from __future__ import annotations

import selectors
import socket
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro import obs
from repro.service.protocol import (
    ServiceProtocolError,
    dump_line,
    error_response,
    parse_line,
)
from repro.service.server import JoinService

__all__ = ["SelectorServiceServer"]


def _collect_transport(server: "SelectorServiceServer") -> None:
    """Scrape-time collector: connection and dispatch counters."""
    registry = obs.get_registry()
    stats = server.stats()
    registry.gauge("sssj_transport_connections_open",
                   "Client connections currently open.").labels().set(
        stats["connections_open"])
    tracker = server._obs_tracker
    tracker.export(registry.counter(
        "sssj_transport_connections_accepted_total",
        "Client connections accepted.").labels(),
        "accepted", stats["connections_accepted"])
    tracker.export(registry.counter(
        "sssj_transport_requests_dispatched_total",
        "Requests handed to dispatch workers.").labels(),
        "dispatched", stats["requests_dispatched"])

_RECV_CHUNK = 65536
#: A single request line larger than this drops the connection — the
#: protocol's own ``MAX_LINE_BYTES`` would reject it anyway, and an
#: unbounded read buffer is a memory hole.
_MAX_BUFFERED_LINE = 32 * 1024 * 1024


class _Connection:
    """Per-client state: buffers, dispatch queue, and liveness."""

    __slots__ = ("sock", "rbuf", "wbuf", "pending", "busy", "lock",
                 "close_after_write", "dead", "last_activity")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.rbuf = bytearray()
        self.wbuf = bytearray()
        #: Complete request lines waiting for (or being) dispatched.
        self.pending: deque[bytes] = deque()
        #: True while a dispatch task is draining ``pending`` — guarantees
        #: serial in-order handling per connection.
        self.busy = False
        self.lock = threading.Lock()
        self.close_after_write = False
        self.dead = False
        self.last_activity = time.monotonic()


class SelectorServiceServer:
    """Single-loop non-blocking TCP transport for a :class:`JoinService`."""

    def __init__(self, service: JoinService, host: str = "127.0.0.1",
                 port: int = 0, *, read_timeout: float | None = None,
                 dispatch_workers: int = 8) -> None:
        if dispatch_workers <= 0:
            raise ValueError(
                f"dispatch_workers must be positive, got {dispatch_workers}")
        self.service = service
        self.read_timeout = read_timeout
        self._listener = socket.create_server((host, port), reuse_port=False)
        self._listener.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, "accept")
        # Loopback pair so dispatch threads can wake the select() call.
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._selector.register(self._wake_recv, selectors.EVENT_READ, "wake")
        self._executor = ThreadPoolExecutor(
            max_workers=dispatch_workers, thread_name_prefix="sssj-dispatch")
        self._connections: dict[socket.socket, _Connection] = {}
        self._stop = threading.Event()
        self._closed = False
        self.connections_accepted = 0
        self.requests_dispatched = 0
        self._obs_tracker = obs.DeltaTracker()
        if obs.enabled():
            obs.get_registry().add_collector(_collect_transport, owner=self)

    # -- public surface (mirrors ServiceServer) --------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — port is resolved when 0 was asked."""
        host, port = self._listener.getsockname()[:2]
        return host, port

    def request_stop(self) -> None:
        """Ask the loop to exit once pending responses are flushed."""
        self._stop.set()
        self._wake()

    def serve_forever(self, poll_interval: float = 0.1) -> None:
        """Run the event loop until :meth:`request_stop` (blocking)."""
        grace_deadline = None
        while True:
            if self._stop.is_set():
                # Drain: keep looping while any response bytes are still
                # owed to a client, with a hard grace period.
                if grace_deadline is None:
                    grace_deadline = time.monotonic() + 2.0
                owed = any(conn.wbuf or conn.busy or conn.pending
                           for conn in self._connections.values())
                if not owed or time.monotonic() >= grace_deadline:
                    break
            self._tick(poll_interval)
        self._close_all_connections()

    def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` op (or KeyboardInterrupt)."""
        try:
            self.serve_forever(poll_interval=0.1)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            self.service.shutdown()
            self.server_close()
            metrics_server = getattr(self, "obs_metrics_server", None)
            if metrics_server is not None:
                metrics_server.close()

    def shutdown(self) -> None:
        """ServiceServer-compatible alias for :meth:`request_stop`."""
        self.request_stop()

    def server_close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        self._close_all_connections()
        for sock in (self._listener, self._wake_recv, self._wake_send):
            try:
                self._selector.unregister(sock)
            except (KeyError, ValueError):
                pass
            try:
                sock.close()
            except OSError:
                pass
        self._selector.close()
        self._executor.shutdown(wait=False)

    # -- event loop ------------------------------------------------------------

    def _tick(self, poll_interval: float) -> None:
        self._update_interests()
        for key, _events in self._selector.select(timeout=poll_interval):
            if key.data == "accept":
                self._accept()
            elif key.data == "wake":
                self._drain_wake()
            else:
                conn = key.data
                self._service_connection(conn, _events)
        self._reap()

    def _update_interests(self) -> None:
        """Recompute each connection's read/write interest set."""
        for conn in self._connections.values():
            events = selectors.EVENT_READ
            with conn.lock:
                if conn.wbuf:
                    events |= selectors.EVENT_WRITE
            try:
                self._selector.modify(conn.sock, events, conn)
            except (KeyError, ValueError):  # pragma: no cover - racing close
                pass

    def _accept(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except BlockingIOError:
                return
            except OSError:  # pragma: no cover - listener closed under us
                return
            sock.setblocking(False)
            conn = _Connection(sock)
            self._connections[sock] = conn
            self._selector.register(sock, selectors.EVENT_READ, conn)
            self.connections_accepted += 1

    def _drain_wake(self) -> None:
        try:
            while self._wake_recv.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _wake(self) -> None:
        try:
            self._wake_send.send(b"\x00")
        except OSError:  # pragma: no cover - closing down
            pass

    def _service_connection(self, conn: _Connection, events: int) -> None:
        if events & selectors.EVENT_READ:
            self._read_ready(conn)
        if events & selectors.EVENT_WRITE:
            self._write_ready(conn)

    def _read_ready(self, conn: _Connection) -> None:
        try:
            chunk = conn.sock.recv(_RECV_CHUNK)
        except BlockingIOError:
            return
        except OSError:
            conn.dead = True
            return
        if not chunk:
            # Peer closed its end.  Any queued work still completes; the
            # reap only collects once the dispatcher and writes are done.
            conn.close_after_write = True
            return
        conn.last_activity = time.monotonic()
        conn.rbuf += chunk
        self._extract_lines(conn)

    def _extract_lines(self, conn: _Connection) -> None:
        lines: list[bytes] = []
        while True:
            newline = conn.rbuf.find(b"\n")
            if newline < 0:
                break
            lines.append(bytes(conn.rbuf[:newline + 1]))
            del conn.rbuf[:newline + 1]
        if len(conn.rbuf) > _MAX_BUFFERED_LINE:
            conn.dead = True
            return
        if not lines:
            return
        with conn.lock:
            conn.pending.extend(line for line in lines if line.strip())
            should_dispatch = bool(conn.pending) and not conn.busy
            if should_dispatch:
                conn.busy = True
        if should_dispatch:
            self._executor.submit(self._dispatch, conn)

    def _write_ready(self, conn: _Connection) -> None:
        with conn.lock:
            if not conn.wbuf:
                return
            try:
                sent = conn.sock.send(bytes(conn.wbuf))
            except BlockingIOError:
                return
            except OSError:
                conn.dead = True
                return
            del conn.wbuf[:sent]
        conn.last_activity = time.monotonic()

    def _reap(self) -> None:
        """Close dead/finished/idle connections (loop thread only)."""
        now = time.monotonic()
        for sock, conn in list(self._connections.items()):
            with conn.lock:
                finished = (conn.close_after_write and not conn.wbuf
                            and not conn.busy and not conn.pending)
            idle = (self.read_timeout is not None
                    and not conn.busy and not conn.pending
                    and now - conn.last_activity > self.read_timeout)
            if conn.dead or finished or idle:
                self._drop(sock, conn)

    def _drop(self, sock: socket.socket, conn: _Connection) -> None:
        self._connections.pop(sock, None)
        try:
            self._selector.unregister(sock)
        except (KeyError, ValueError):
            pass
        try:
            sock.close()
        except OSError:
            pass

    def _close_all_connections(self) -> None:
        for sock, conn in list(self._connections.items()):
            self._drop(sock, conn)

    # -- dispatch (executor threads) -------------------------------------------

    def _dispatch(self, conn: _Connection) -> None:
        """Drain one connection's pending lines, strictly in order."""
        while True:
            with conn.lock:
                if not conn.pending or conn.dead:
                    conn.busy = False
                    break
                line = conn.pending.popleft()
            self._handle_line(conn, line)
        self._wake()

    def _handle_line(self, conn: _Connection, line: bytes) -> None:
        try:
            request = parse_line(line)
        except ServiceProtocolError as error:
            self._send(conn, dump_line(error_response(str(error))))
            return
        response = self.service.handle(request)
        self.requests_dispatched += 1
        injector = self.service.fault_injector
        if (injector is not None and request.get("op") == "ingest"
                and response.get("ok") and injector.client_sever_due()):
            # Sever *after* the request was applied but before the ack —
            # same harsh spot as the threaded transport: the client must
            # retry into the sequence-number dedup.
            conn.dead = True
            self._wake()
            return
        self._send(conn, dump_line(response))
        if request.get("op") == "shutdown" and response.get("ok"):
            conn.close_after_write = True
            self.request_stop()

    def _send(self, conn: _Connection, payload: bytes) -> None:
        with conn.lock:
            conn.wbuf += payload
        self._wake()

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "transport": "selector",
            "connections_open": len(self._connections),
            "connections_accepted": self.connections_accepted,
            "requests_dispatched": self.requests_dispatched,
        }
