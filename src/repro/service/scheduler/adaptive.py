"""Adaptive micro-batch sizing from live latency and queue depth.

Micro-batch size is the service's throughput/latency dial: big batches
amortise per-batch overhead (sink writes, checkpoint ticks, scheduler
round trips) but hold early vectors hostage to the batch tail's
processing, inflating per-item p99.  Instead of one static
``batch_max_items`` for all weathers, the batcher picks a size per
quantum from two live signals:

* **queue depth** — a backlog deeper than the current batch size means
  the producer is outrunning us; latency is already lost, so trade it
  for throughput and *grow* (up to ``max_items``);
* **p99 latency** — when the session's sliding-window p99 exceeds the
  target while the queue is shallow, the batch size is the remaining
  lever; *shrink* back toward (and below) the configured size, down to
  ``min_items``.

Sizes move geometrically (×2 / ×½) so the controller converges in a few
quanta, and start from the session's configured ``batch_max_items`` so
an explicitly tuned session keeps its setting until the signals say
otherwise.  Batch size never affects *which* pairs a session emits —
the queue is FIFO and quanta are exclusive — so adaptivity is invisible
to the determinism contract.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.session import JoinSession

__all__ = ["AdaptiveBatcher"]


class AdaptiveBatcher:
    """Per-session geometric batch-size controller (thread-safe)."""

    def __init__(self, *, min_items: int = 16, max_items: int = 1024,
                 target_p99_ms: float = 250.0) -> None:
        if min_items <= 0:
            raise ValueError(f"min_items must be positive, got {min_items}")
        if max_items < min_items:
            raise ValueError(
                f"max_items ({max_items}) must be >= min_items ({min_items})")
        if target_p99_ms <= 0:
            raise ValueError(
                f"target_p99_ms must be positive, got {target_p99_ms}")
        self.min_items = min_items
        self.max_items = max_items
        self.target_p99_ms = target_p99_ms
        self._sizes: dict[str, int] = {}
        self._lock = threading.Lock()

    def suggest(self, session: "JoinSession") -> int:
        """Batch size for this session's next quantum."""
        name = session.config.name
        base = session.config.batch_max_items
        queued = session.queued
        p99_ms = (session.latency.percentile(99) * 1e3
                  if len(session.latency) else 0.0)
        with self._lock:
            size = self._sizes.get(name, base)
            if queued > 2 * size:
                # Deep backlog: throughput mode.  (A cold session with no
                # latency samples grows too — the backlog itself is the
                # signal.)
                size = min(self.max_items, size * 2)
            elif p99_ms > self.target_p99_ms:
                # Latency over target and the queue is shallow: shrink.
                size = max(self.min_items, size // 2)
            elif queued <= size // 4 and size > base:
                # Load gone: decay back toward the configured size.
                size = max(base, size // 2)
            size = max(self.min_items, min(self.max_items, size))
            self._sizes[name] = size
            return size

    def forget(self, name: str) -> None:
        """Drop the controller state of a closed/evicted session."""
        with self._lock:
            self._sizes.pop(name, None)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            sizes = dict(self._sizes)
        return {
            "min_items": self.min_items,
            "max_items": self.max_items,
            "target_p99_ms": self.target_p99_ms,
            "sessions_tracked": len(sizes),
            "sizes": sizes,
        }
