"""The multi-tenant scheduler service: quotas, pooled execution, eviction.

:class:`SchedulerService` extends the transport-independent
:class:`~repro.service.server.JoinService` with the four pieces that turn
it from "a thread per session" into "N sessions over M workers":

* every session it builds or resumes is *scheduled* (no dedicated
  thread); a :class:`~repro.service.scheduler.pool.WorkerPool` runs
  quanta handed out by a weighted deficit-round-robin
  :class:`~repro.service.scheduler.ready.DRRReadyQueue`, so one hot
  tenant cannot starve the rest;
* per-tenant :class:`~repro.service.scheduler.tenants.TenantState`
  enforces session-count, standing-queue and ingest-rate quotas before
  any vector is consumed (rejections carry machine-readable codes and
  never advance the ingest sequence);
* idle sessions are **checkpointed and evicted** — the engine and the
  retained pairs are dropped, leaving a placeholder whose memory cost is
  a config and a handful of counters; the next ingest (or results read)
  **lazily restores** the session from its envelope, transparently to
  the client (sequence numbers continue exactly);
* an optional :class:`~repro.service.scheduler.adaptive.AdaptiveBatcher`
  sizes each quantum's micro-batch from the session's live latency.

Determinism: scheduling only decides *when* a session's FIFO queue is
drained, never in what order or by how many concurrent workers (quanta
are exclusive), so each session still emits exactly the pairs of
``streaming_self_join`` over its accepted vectors — under any pool size,
quota configuration or eviction timing (pinned in
``tests/test_scheduler.py``).
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Any, Callable

from repro import obs
from repro.service.scheduler.adaptive import AdaptiveBatcher
from repro.service.scheduler.pool import WorkerPool
from repro.service.scheduler.ready import DRRReadyQueue
from repro.service.scheduler.tenants import TenantQuota, TenantState
from repro.service.server import JoinService, _session_name
from repro.service.session import JoinSession, SessionConfig, SessionError

__all__ = ["SchedulerService"]


def _collect_scheduler(service: "SchedulerService") -> None:
    """Scrape-time collector: pool, DRR queue, eviction and tenant state."""
    registry = obs.get_registry()
    tracker = service._obs_tracker
    pool = service.pool.stats()
    registry.gauge("sssj_pool_workers",
                   "Threads in the worker pool.").labels().set(
        pool["workers"])
    tracker.export(registry.counter(
        "sssj_pool_quanta_total", "Quanta run by the worker pool.").labels(),
        "pool_quanta", pool["quanta_run"])
    tracker.export(registry.counter(
        "sssj_pool_vectors_total",
        "Vectors processed by pooled quanta.").labels(),
        "pool_vectors", pool["vectors_processed"])
    ready = service.ready.stats()
    registry.gauge("sssj_scheduler_ready_sessions",
                   "Sessions waiting in the DRR ready queue.").labels().set(
        ready["ready_sessions"])
    registry.gauge("sssj_scheduler_tenants_in_rotation",
                   "Tenants currently in the DRR rotation.").labels().set(
        ready["tenants_in_rotation"])
    tracker.export(registry.counter(
        "sssj_scheduler_pushes_total", "Ready-queue pushes.").labels(),
        "ready_pushes", ready["pushes"])
    tracker.export(registry.counter(
        "sssj_scheduler_pops_total", "Ready-queue pops.").labels(),
        "ready_pops", ready["pops"])
    deficit_gauge = registry.gauge(
        "sssj_scheduler_drr_deficit",
        "DRR deficit per tenant (negative values are carried debt).",
        ("tenant",))
    for tenant, deficit in ready["deficit"].items():
        deficit_gauge.labels(tenant=tenant).set(deficit)
    tracker.export(registry.counter(
        "sssj_scheduler_evictions_total",
        "Idle sessions checkpoint-evicted.").labels(),
        "evictions", service.evictions)
    tracker.export(registry.counter(
        "sssj_scheduler_restores_total",
        "Evicted sessions lazily restored.").labels(),
        "restores", service.restores)
    with service._lock:
        tenants = list(service.tenants.values())
    admitted = registry.counter(
        "sssj_tenant_admitted_vectors_total",
        "Vectors admitted past tenant quotas.", ("tenant",))
    tenant_sessions = registry.gauge(
        "sssj_tenant_sessions", "Open sessions per tenant.", ("tenant",))
    for state in tenants:
        tracker.export(admitted.labels(tenant=state.name),
                       ("tenant_admitted", state.name), state.admitted)
        tenant_sessions.labels(tenant=state.name).set(state.session_count)


class SchedulerService(JoinService):
    """A :class:`JoinService` whose sessions share a bounded worker pool."""

    def __init__(self, *, pool_workers: int = 4, quantum_batches: int = 4,
                 drr_quantum: int = 256,
                 default_quota: TenantQuota | None = None,
                 tenant_quotas: dict[str, TenantQuota] | None = None,
                 evict_after: float | None = None,
                 adaptive_batch: bool = False,
                 adaptive_min_items: int = 16,
                 adaptive_max_items: int = 1024,
                 adaptive_target_p99_ms: float = 250.0,
                 clock: Callable[[], float] = time.monotonic,
                 **service_options: Any) -> None:
        super().__init__(**service_options)
        #: Quota applied to tenants without an explicit entry in
        #: ``tenant_quotas`` (the all-None default imposes no limits).
        self.default_quota = default_quota or TenantQuota()
        self.tenant_quotas = dict(tenant_quotas or {})
        self._clock = clock
        self.tenants: dict[str, TenantState] = {}
        self.ready = DRRReadyQueue(quantum=drr_quantum)
        self.batcher = (AdaptiveBatcher(
            min_items=adaptive_min_items, max_items=adaptive_max_items,
            target_p99_ms=adaptive_target_p99_ms)
            if adaptive_batch else None)
        self.pool = WorkerPool(self.ready, workers=pool_workers,
                               max_batches=quantum_batches,
                               batcher=self.batcher)
        #: Seconds of inactivity after which an idle checkpointable
        #: session is evicted (None disables the sweeper).
        self.evict_after = evict_after
        self.evictions = 0
        self.restores = 0
        self._restore_locks: dict[str, threading.Lock] = {}
        self._sweeper: threading.Thread | None = None
        self._sweeper_stop = threading.Event()
        if obs.enabled():
            obs.get_registry().add_collector(_collect_scheduler, owner=self)
        self.pool.start()
        if evict_after is not None:
            if evict_after <= 0:
                raise ValueError(
                    f"evict_after must be positive, got {evict_after}")
            self._sweeper = threading.Thread(
                target=self._sweep_loop, name="sssj-evict-sweeper",
                daemon=True)
            self._sweeper.start()

    # -- scheduler plumbing ----------------------------------------------------

    def notify(self, session: JoinSession) -> None:
        """Session callback: work was enqueued — make it schedulable."""
        self.ready.push(session)

    def tenant_state(self, tenant: str) -> TenantState:
        """The (lazily created) accounting state for a tenant."""
        with self._lock:
            state = self.tenants.get(tenant)
            if state is None:
                quota = self.tenant_quotas.get(tenant, self.default_quota)
                state = self.tenants[tenant] = TenantState(
                    tenant, quota, clock=self._clock)
                self.ready.set_weight(tenant, quota.weight)
            return state

    # -- session construction (hooks from the base service) --------------------

    def _build_session(self, config: SessionConfig, sinks: list,
                       checkpoint_path: Path | None) -> JoinSession:
        return JoinSession(config, sinks=sinks,
                           checkpoint_path=checkpoint_path,
                           fault_injector=self.fault_injector,
                           scheduler=self)

    def _resume_session(self, path: Path) -> JoinSession:
        return JoinSession.resume(path, scheduler=self)

    def open_session(self, request: dict[str, Any]) -> dict[str, Any]:
        name = _session_name(request)
        tenant = str(request.get("tenant", "default"))
        with self._lock:
            known = name in self.sessions
        if known:
            # Re-opening an existing (possibly evicted) session: the base
            # handler answers from the registry without touching quotas.
            return super().open_session(request)
        state = self.tenant_state(tenant)
        state.admit_session(name)  # QuotaError propagates to the dispatcher
        try:
            return super().open_session(request)
        except BaseException:
            state.release_session(name)
            raise

    def close_session(self, name: str) -> dict[str, Any]:
        with self._lock:
            session = self.sessions.get(name)
            tenant = session.config.tenant if session is not None else None
        response = super().close_session(name)
        if tenant is not None:
            self.tenant_state(tenant).release_session(name)
            if self.batcher is not None:
                self.batcher.forget(name)
            with self._lock:
                self._restore_locks.pop(name, None)
        return response

    # -- lazy restore ----------------------------------------------------------

    def _session(self, name: str) -> JoinSession:
        session = super()._session(name)
        if session.status not in ("evicted", "evicting"):
            return session
        # "evicting" routes here too: the restore gate is held by the
        # in-flight evict, so this blocks until the envelope is final
        # instead of reading a half-written checkpoint.
        return self._restore_session(name)

    def _restore_session(self, name: str) -> JoinSession:
        """Swap an evicted placeholder for a live session (serialised)."""
        with self._lock:
            gate = self._restore_locks.setdefault(name, threading.Lock())
        with gate:
            with self._lock:
                session = self.sessions.get(name)
            if session is None:
                raise SessionError(f"no session named {name!r}; open it first")
            if session.status != "evicted":
                return session  # another caller restored it first
            path = session.checkpoint_path
            if path is None:  # pragma: no cover - evict requires a path
                raise SessionError(
                    f"session {name!r} is evicted but has no checkpoint")
            with obs.span("restore", session=name):
                restored = self._resume_session(path)
            restored.start()
            with self._lock:
                self.sessions[name] = restored
            self.restores += 1
            return restored

    # -- quota-enforcing ingest ------------------------------------------------

    def _handle_ingest(self, request: dict[str, Any]) -> dict[str, Any]:
        name = _session_name(request)
        payloads = request.get("vectors")
        count = len(payloads) if isinstance(payloads, list) else 0
        for attempt in (0, 1):
            session = self._session(name)
            if count:
                self._admit_ingest(session, request, count)
            try:
                return super()._handle_ingest(request)
            except SessionError:
                # The sweeper may evict between our lookup and the
                # session's own status check; restore once and retry.
                with self._lock:
                    current = self.sessions.get(name)
                if (attempt == 0 and current is not None
                        and current.status in ("evicted", "evicting")):
                    continue
                raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _admit_ingest(self, session: JoinSession, request: dict[str, Any],
                      count: int) -> None:
        """Charge the batch's *fresh* vectors against the tenant's quotas.

        Resends deduplicated by the sequence number are free — the
        session already consumed them — so a client retrying a lost ack
        is never double-charged (or spuriously rate-limited).
        """
        seq = request.get("seq")
        fresh = count
        if seq is not None:
            already = max(0, session.ingest_seq - int(seq))
            fresh = max(0, count - already)
        if not fresh:
            return
        tenant = session.config.tenant
        state = self.tenant_state(tenant)
        state.admit_vectors(fresh, self._tenant_queued(tenant))

    def _tenant_queued(self, tenant: str) -> int:
        with self._lock:
            sessions = list(self.sessions.values())
        return sum(session.queued for session in sessions
                   if session.config.tenant == tenant)

    # -- eviction --------------------------------------------------------------

    def evict_session(self, name: str) -> Path | None:
        """Checkpoint-and-evict one idle session; None when not possible.

        The session is first *claimed* under the ready-queue lock (idle →
        EVICTED), which fences out the pool; the barrier checkpoint then
        only succeeds if the queue is still empty.  Any work racing in
        aborts the eviction and reschedules the session.
        """
        with self._lock:
            session = self.sessions.get(name)
            if session is not None:
                gate = self._restore_locks.setdefault(name, threading.Lock())
        if (session is None or session.status != "active"
                or session.checkpoint_path is None or session.join is None):
            return None
        if not self.ready.claim_for_evict(session):
            return None
        path = None
        try:
            # Hold the restore gate across the checkpoint write so a
            # concurrent lazy restore serialises behind this eviction
            # instead of reading a stale (or half-written) envelope.
            with gate:
                with obs.span("evict", session=name,
                              tenant=session.config.tenant):
                    path = session.try_evict()
        finally:
            if path is None:
                self.ready.release_evict_claim(session)
        if path is not None:
            self.evictions += 1
            if self.batcher is not None:
                self.batcher.forget(name)
        return path

    def _handle_evict(self, request: dict[str, Any]) -> dict[str, Any]:
        name = _session_name(request)
        with self._lock:
            session = self.sessions.get(name)
        if session is None:
            raise SessionError(f"no session named {name!r}; open it first")
        if session.status in ("evicted", "evicting"):
            return {"ok": True, "session": name, "already_evicted": True}
        # Brief retry: a session whose queue just drained is still
        # RUNNING until its worker calls finish() — an explicit evict
        # request should ride out that window rather than bounce.
        path = None
        deadline = time.monotonic() + 1.0
        while path is None:
            path = self.evict_session(name)
            if path is not None or time.monotonic() >= deadline:
                break
            with self._lock:
                session = self.sessions.get(name)
            if (session is None or session.status != "active"
                    or session.queued or session.checkpoint_path is None):
                break  # not transient — report the failure now
            time.sleep(0.01)
        if path is None:
            raise SessionError(
                f"session {name!r} cannot be evicted right now: it must be "
                "active, idle, checkpointable, and have an empty queue")
        return {"ok": True, "session": name, "evicted": True,
                "checkpoint": str(path)}

    def _sweep_loop(self) -> None:
        interval = max(0.05, min(1.0, (self.evict_after or 1.0) / 4))
        while not self._sweeper_stop.wait(interval):
            now = time.monotonic()
            with self._lock:
                candidates = list(self.sessions.items())
            for name, session in candidates:
                if (session.status == "active"
                        and session.join is not None
                        and session.checkpoint_path is not None
                        and session.queued == 0
                        and now - session.last_activity >= self.evict_after):
                    try:
                        self.evict_session(name)
                    except Exception:  # noqa: BLE001 - sweeping is best-effort
                        pass  # a failed evict leaves the session live

    # -- observability / lifecycle ---------------------------------------------

    def stats(self, session: str | None = None) -> dict[str, Any]:
        response = super().stats(session)
        if session is None:
            response["scheduler"] = {
                "pool": self.pool.stats(),
                "ready": self.ready.stats(),
                "evictions": self.evictions,
                "restores": self.restores,
                "evict_after_s": self.evict_after,
                "adaptive": (self.batcher.stats()
                             if self.batcher is not None else None),
            }
            with self._lock:
                tenants = dict(self.tenants)
            response["tenants"] = {name: state.stats()
                                   for name, state in sorted(tenants.items())}
        return response

    def shutdown(self) -> dict[str, Any]:
        """Close every session, then stop the sweeper and the pool.

        Ordering matters: sessions are closed *before* the pool stops,
        because a scheduled session's close() is executed by a pool
        worker (the stop control token).
        """
        with self._lock:
            if self.shutting_down:
                return {"ok": True, "closed": 0}
            self.shutting_down = True
            sessions = list(self.sessions.items())
            self.sessions.clear()
        self._sweeper_stop.set()
        for _name, session in sessions:
            session.close()
        self.pool.stop()
        if self._sweeper is not None:
            self._sweeper.join(timeout=5.0)
        return {"ok": True, "closed": len(sessions)}
