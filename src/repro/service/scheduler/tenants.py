"""Per-tenant accounting: quotas, token-bucket rate limiting, counters.

A *tenant* is the unit of resource governance in the multi-tenant
scheduler: every session belongs to exactly one (``SessionConfig.tenant``,
default ``"default"``), and the service enforces three independent
quotas before any work is accepted:

* ``max_sessions`` — how many named sessions the tenant may hold open
  (evicted sessions still count: the name and its checkpoint are owned
  until the session is closed);
* ``max_queued`` — total vectors the tenant may have waiting in its
  sessions' bounded queues, capping the tenant's standing memory;
* ``rate`` — a token-bucket ingest rate in vectors/second with a burst
  capacity, smoothing a hot tenant to its contracted throughput.

Rejections raise :class:`QuotaError`, which carries a machine-readable
``code`` (``quota_sessions`` / ``quota_queued`` / ``quota_rate``) and,
for rate rejections, a ``retry_after_s`` hint — the wire error response
forwards both, so well-behaved clients can back off precisely.  A quota
rejection happens *before* any vector is consumed: the session's ingest
sequence number does not advance, so the client simply retries the same
batch later.

The bucket clock is injectable (``clock=``) so tests can drive refills
deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass
from typing import Any, Callable

from repro import obs
from repro.service.session import SessionError

__all__ = ["QUOTA_CODES", "QuotaError", "TenantQuota", "TenantState"]

#: Machine-readable rejection codes carried by :class:`QuotaError`.
QUOTA_CODES = ("quota_sessions", "quota_queued", "quota_rate")


class QuotaError(SessionError):
    """A tenant exceeded one of its quotas; nothing was consumed.

    ``code`` is one of :data:`QUOTA_CODES`; ``retry_after_s`` is set on
    rate rejections to the seconds until the bucket holds enough tokens.
    """

    def __init__(self, message: str, *, code: str,
                 retry_after_s: float | None = None) -> None:
        super().__init__(message)
        self.code = code
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class TenantQuota:
    """Resource limits for one tenant (``None`` disables that limit)."""

    max_sessions: int | None = None
    max_queued: int | None = None
    #: Sustained ingest rate in vectors/second (token-bucket refill).
    rate: float | None = None
    #: Bucket capacity in vectors; defaults to two seconds of ``rate``.
    #: A single ingest request larger than the burst can never be
    #: admitted — keep client chunk sizes at or below it.
    burst: float | None = None
    #: Deficit-round-robin weight: a weight-2 tenant receives twice the
    #: processing credit per scheduler rotation of a weight-1 tenant.
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.max_sessions is not None and self.max_sessions <= 0:
            raise ValueError(
                f"max_sessions must be positive, got {self.max_sessions}")
        if self.max_queued is not None and self.max_queued <= 0:
            raise ValueError(
                f"max_queued must be positive, got {self.max_queued}")
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.burst is not None and self.burst <= 0:
            raise ValueError(f"burst must be positive, got {self.burst}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")

    @property
    def bucket_capacity(self) -> float:
        """Effective burst capacity (two seconds of ``rate`` by default)."""
        if self.rate is None:
            return 0.0
        return self.burst if self.burst is not None else 2.0 * self.rate

    def as_dict(self) -> dict[str, Any]:
        return asdict(self)


class TenantState:
    """Live accounting for one tenant: owned sessions, tokens, counters.

    Thread-safe; one instance per tenant, created on first contact and
    kept for the service's lifetime (the counters are the ``tenants``
    section of the ``stats`` endpoint).
    """

    def __init__(self, name: str, quota: TenantQuota, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.name = name
        self.quota = quota
        self._clock = clock
        self._lock = threading.Lock()
        self._sessions: set[str] = set()
        self._tokens = quota.bucket_capacity
        self._refilled_at = clock()
        self.admitted = 0
        self.rejected = {"sessions": 0, "queued": 0, "rate": 0}
        # Rejections are rare (and already exceptional), so they are
        # counted inline; admissions are exported by the scheduler's
        # scrape-time collector instead.
        self._obs_rejected = None
        if obs.enabled():
            self._obs_rejected = obs.get_registry().counter(
                "sssj_tenant_rejected_total",
                "Quota rejections by tenant and reason.",
                ("tenant", "reason"))

    def _count_rejection(self, reason: str) -> None:
        self.rejected[reason] += 1
        if self._obs_rejected is not None:
            self._obs_rejected.labels(tenant=self.name, reason=reason).inc()

    # -- session ownership -----------------------------------------------------

    def admit_session(self, session_name: str) -> None:
        """Claim a session name, or raise ``quota_sessions``."""
        with self._lock:
            if session_name in self._sessions:
                return  # idempotent: re-opening an owned session is free
            limit = self.quota.max_sessions
            if limit is not None and len(self._sessions) >= limit:
                self._count_rejection("sessions")
                raise QuotaError(
                    f"tenant {self.name!r} is at its session quota "
                    f"({limit}); close a session before opening another",
                    code="quota_sessions")
            self._sessions.add(session_name)

    def release_session(self, session_name: str) -> None:
        with self._lock:
            self._sessions.discard(session_name)

    @property
    def session_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    # -- ingest admission ------------------------------------------------------

    def _refill(self, now: float) -> None:
        """Top up the token bucket for the wall clock elapsed (locked)."""
        rate = self.quota.rate
        if rate is None:
            return
        elapsed = max(0.0, now - self._refilled_at)
        self._refilled_at = now
        self._tokens = min(self.quota.bucket_capacity,
                           self._tokens + elapsed * rate)

    def admit_vectors(self, count: int, queued_now: int) -> None:
        """Charge ``count`` fresh vectors against the tenant's quotas.

        ``queued_now`` is the tenant's current total queue depth across
        its sessions.  Raises :class:`QuotaError` — and consumes nothing
        — when either the standing-queue cap or the rate bucket refuses
        the batch; admission is all-or-nothing so a rejected client can
        resend the identical batch without splitting it.
        """
        if count <= 0:
            return
        with self._lock:
            limit = self.quota.max_queued
            if limit is not None and queued_now + count > limit:
                self._count_rejection("queued")
                raise QuotaError(
                    f"tenant {self.name!r} would exceed its queued-vector "
                    f"quota ({queued_now} queued + {count} new > {limit}); "
                    "drain or wait for the backlog to clear",
                    code="quota_queued")
            if self.quota.rate is not None:
                self._refill(self._clock())
                if self._tokens < count:
                    deficit = count - self._tokens
                    retry_after = deficit / self.quota.rate
                    self._count_rejection("rate")
                    raise QuotaError(
                        f"tenant {self.name!r} is over its ingest rate "
                        f"({self.quota.rate:g} vectors/s); retry in "
                        f"{retry_after:.3f}s",
                        code="quota_rate",
                        retry_after_s=round(retry_after, 3))
                self._tokens -= count
            self.admitted += count

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        with self._lock:
            tokens = self._tokens
            sessions = len(self._sessions)
            rejected = dict(self.rejected)
        return {
            "tenant": self.name,
            "sessions": sessions,
            "admitted": self.admitted,
            "rejected": rejected,
            "tokens": round(tokens, 3),
            "quota": self.quota.as_dict(),
        }
