"""Multi-tenant session scheduling for the join service.

The package turns the service from "a thread per session, a thread per
connection" into a bounded system: N sessions share M pool workers
(:mod:`~repro.service.scheduler.pool`) scheduled by weighted deficit
round robin over tenants (:mod:`~repro.service.scheduler.ready`), with
per-tenant quotas (:mod:`~repro.service.scheduler.tenants`), idle
checkpoint-evict / lazy restore and adaptive micro-batching
(:mod:`~repro.service.scheduler.service`,
:mod:`~repro.service.scheduler.adaptive`), all behind a single-loop
selector transport (:mod:`~repro.service.scheduler.aserver`).

Enable it with ``sssj serve --pool-workers N`` or
``serve(pool_workers=N, scheduler_options={...})``.
"""

from repro.service.scheduler.adaptive import AdaptiveBatcher
from repro.service.scheduler.aserver import SelectorServiceServer
from repro.service.scheduler.pool import WorkerPool
from repro.service.scheduler.ready import DRRReadyQueue
from repro.service.scheduler.service import SchedulerService
from repro.service.scheduler.tenants import (
    QUOTA_CODES,
    QuotaError,
    TenantQuota,
    TenantState,
)

__all__ = [
    "AdaptiveBatcher",
    "DRRReadyQueue",
    "QUOTA_CODES",
    "QuotaError",
    "SchedulerService",
    "SelectorServiceServer",
    "TenantQuota",
    "TenantState",
    "WorkerPool",
]
