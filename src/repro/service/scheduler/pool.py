"""The bounded worker pool: M threads running N sessions' quanta.

Replaces thread-per-session: each worker loops popping the next ready
session from the :class:`~repro.service.scheduler.ready.DRRReadyQueue`,
runs one quantum (:meth:`JoinSession.run_quantum` — exclusive, so the
per-session FIFO determinism contract is untouched), charges the
tenant's deficit with the vectors actually processed, and hands the
session back to the queue.  Capacity is therefore ``workers`` concurrent
quanta regardless of how many thousands of sessions exist.

An optional :class:`~repro.service.scheduler.adaptive.AdaptiveBatcher`
chooses each quantum's micro-batch size from the session's live latency
and queue depth.
"""

from __future__ import annotations

import threading
from typing import Any

from repro import obs
from repro.service.scheduler.ready import DRRReadyQueue

__all__ = ["WorkerPool"]


class WorkerPool:
    """Fixed-size thread pool draining a DRR ready queue of sessions."""

    def __init__(self, ready: DRRReadyQueue, *, workers: int = 4,
                 max_batches: int = 4, batcher=None) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if max_batches <= 0:
            raise ValueError(f"max_batches must be positive, got {max_batches}")
        self._ready = ready
        self.workers = workers
        #: Micro-batches one quantum may run before the session goes back
        #: to the queue — the knob trading per-session burst throughput
        #: against cross-session latency.
        self.max_batches = max_batches
        self._batcher = batcher
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self.quanta_run = 0
        self.vectors_processed = 0

    def start(self) -> None:
        if self._threads:
            return
        for index in range(self.workers):
            thread = threading.Thread(target=self._run,
                                      name=f"sssj-pool-{index}", daemon=True)
            thread.start()
            self._threads.append(thread)

    def _run(self) -> None:
        while not self._stop.is_set():
            session = self._ready.pop(timeout=0.1)
            if session is None:
                continue
            batch_items = (self._batcher.suggest(session)
                           if self._batcher is not None else None)
            with obs.span("dispatch", session=session.config.name,
                          tenant=session.config.tenant) as span:
                try:
                    _more, processed = session.run_quantum(
                        max_batches=self.max_batches, batch_items=batch_items)
                except BaseException:  # pragma: no cover - run_quantum reports
                    processed = 0      # its own failures; never kill the worker
                span.note(processed=processed)
            self._ready.charge(session.config.tenant, processed)
            with self._lock:
                self.quanta_run += 1
                self.vectors_processed += processed
            self._ready.finish(session)

    def stop(self, timeout: float = 5.0) -> None:
        """Stop accepting work and join the workers (idempotent)."""
        self._stop.set()
        self._ready.close()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "workers": self.workers,
                "max_batches": self.max_batches,
                "quanta_run": self.quanta_run,
                "vectors_processed": self.vectors_processed,
                "adaptive": self._batcher is not None,
            }
