"""The ready queue: weighted deficit-round-robin over per-tenant buckets.

Sessions are the schedulable units.  When work lands in a session's
bounded queue it is *pushed* here (state ``idle`` → ``ready``); a pool
worker *pops* the next session to run (``ready`` → ``running``), runs
one quantum, *charges* the vectors it processed against the session's
tenant, and *finishes* (``running`` → ``ready`` again if more work is
queued, else ``idle``).

Fairness is classic deficit round robin (Shreedhar & Varghese) over
tenants, with the cost unit being *vectors processed* rather than bytes:

* tenants with ready sessions sit in a rotation; each tenant has a
  deficit counter;
* a visit to the rotation head serves that tenant while its deficit is
  positive; when the deficit runs out the tenant is topped up by
  ``quantum × weight`` and rotated to the tail;
* the charge for a quantum is applied after it ran (its true cost is
  only known then), so the deficit can go negative — the debt carries
  into the tenant's next top-ups, which keeps long-run shares
  proportional to weights even though individual quanta overshoot.  The
  debt is clamped so one enormous quantum cannot starve a tenant
  forever;
* a tenant whose bucket empties is retired from the rotation and its
  deficit reset to zero (the DRR rule that makes an idle tenant's unused
  credit evaporate instead of accruing into a burst).

All run-state transitions happen under this queue's lock — that is the
invariant that makes wakeups race-free: an ingest that lands while the
session is RUNNING does not re-push (the pop is exclusive), and the
worker's ``finish`` re-checks the session's queue *under this lock*
before declaring it idle, so the work either was seen by the running
quantum or re-schedules the session.  Lock order is always ready-queue
lock → session lock, never the reverse.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Any

from repro import obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.session import JoinSession

__all__ = ["DRRReadyQueue"]


class DRRReadyQueue:
    """Thread-safe weighted-DRR ready queue of sessions, keyed by tenant."""

    def __init__(self, *, quantum: int = 256) -> None:
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        #: Processing credit (in vectors) granted per rotation visit,
        #: scaled by the tenant's weight.
        self.quantum = quantum
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._buckets: dict[str, deque[JoinSession]] = {}
        self._rotation: deque[str] = deque()
        self._in_rotation: set[str] = set()
        self._deficit: dict[str, float] = {}
        self._weights: dict[str, float] = {}
        self._closed = False
        self.pushes = 0
        self.pops = 0
        # DRR wait: how long a worker sat on the queue before a
        # successful pop (timed-out polls are not dispatches).
        self._obs_wait = None
        if obs.enabled():
            self._obs_wait = obs.get_registry().histogram(
                "sssj_scheduler_dispatch_wait_seconds",
                "Worker wait on the DRR ready queue per successful pop."
            ).labels()

    # -- configuration ---------------------------------------------------------

    def set_weight(self, tenant: str, weight: float) -> None:
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        with self._lock:
            self._weights[tenant] = float(weight)

    def _weight(self, tenant: str) -> float:
        return self._weights.get(tenant, 1.0)

    def _max_debt(self, tenant: str) -> float:
        # One runaway quantum may overdraw at most a few rotations' worth
        # of credit; deeper debt is forgiven so the tenant is not starved
        # indefinitely by a single oversized burst.
        return 4.0 * self.quantum * self._weight(tenant)

    # -- scheduling ------------------------------------------------------------

    def push(self, session: "JoinSession") -> bool:
        """Mark a session ready (idle → ready); no-op in any other state.

        Returns True when the session was enqueued.  A RUNNING session is
        deliberately not re-pushed: the worker's :meth:`finish` re-checks
        for queued work under this lock, so the wakeup cannot be lost.
        """
        with self._cond:
            if self._closed or session.run_state != "idle":
                return False
            session.run_state = "ready"
            self._enqueue_locked(session)
            self.pushes += 1
            self._cond.notify()
            return True

    def _enqueue_locked(self, session: "JoinSession") -> None:
        tenant = session.config.tenant
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = deque()
        bucket.append(session)
        if tenant not in self._in_rotation:
            self._rotation.append(tenant)
            self._in_rotation.add(tenant)
            self._deficit.setdefault(tenant, 0.0)

    def pop(self, timeout: float | None = None) -> "JoinSession | None":
        """Next session to run (ready → running), or None on timeout/close."""
        started = time.monotonic()
        deadline = None if timeout is None else started + timeout
        with self._cond:
            while True:
                session = self._pop_locked()
                if session is not None:
                    session.run_state = "running"
                    self.pops += 1
                    if self._obs_wait is not None:
                        self._obs_wait.observe(time.monotonic() - started)
                    return session
                if self._closed:
                    return None
                if deadline is None:
                    self._cond.wait(0.1)
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._cond.wait(min(remaining, 0.1))

    def _pop_locked(self) -> "JoinSession | None":
        """One DRR step: serve the head tenant or rotate/top-up (locked)."""
        while self._rotation:
            tenant = self._rotation[0]
            bucket = self._buckets.get(tenant)
            if not bucket:
                # Bucket drained: retire the tenant and reset its deficit
                # (unused credit must not accrue while it has no work).
                self._rotation.popleft()
                self._in_rotation.discard(tenant)
                self._buckets.pop(tenant, None)
                self._deficit[tenant] = min(0.0, self._deficit.get(tenant, 0.0))
                continue
            if self._deficit.get(tenant, 0.0) > 0.0:
                return bucket.popleft()
            # Out of credit: top up by quantum × weight and move to the
            # tail.  Every top-up is strictly positive, so this loop
            # terminates — debt is bounded by the charge-side clamp.
            self._deficit[tenant] = (self._deficit.get(tenant, 0.0)
                                     + self.quantum * self._weight(tenant))
            self._rotation.rotate(-1)
        return None

    def charge(self, tenant: str, vectors: int) -> None:
        """Debit a finished quantum's true cost against its tenant."""
        if vectors <= 0:
            return
        with self._lock:
            deficit = self._deficit.get(tenant, 0.0) - vectors
            self._deficit[tenant] = max(deficit, -self._max_debt(tenant))

    def finish(self, session: "JoinSession") -> None:
        """End a quantum: running → ready (work pending) or idle.

        The pending-work check happens under this lock (taking the
        session lock inside it — the one sanctioned nesting), closing
        the window where an ingest lands after the quantum stopped
        looking but before the session is marked idle.
        """
        with self._cond:
            if session.run_state != "running":
                return  # evicted or torn down while we ran
            if (session.status == "active" and not self._closed
                    and session.has_pending()):
                session.run_state = "ready"
                self._enqueue_locked(session)
                self._cond.notify()
            else:
                session.run_state = "idle"

    # -- eviction handshake ----------------------------------------------------

    def claim_for_evict(self, session: "JoinSession") -> bool:
        """Atomically take an IDLE session out of scheduling (→ EVICTED).

        Only an idle session may be claimed — ready/running sessions
        have (or may discover) work.  While claimed, ``push`` refuses the
        session, so no pool worker can touch it mid-evict.
        """
        with self._lock:
            if session.run_state != "idle":
                return False
            session.run_state = "evicted"
            return True

    def release_evict_claim(self, session: "JoinSession") -> None:
        """Undo a claim whose eviction did not complete (work snuck in)."""
        with self._cond:
            if session.run_state != "evicted":
                return
            session.run_state = "idle"
            if session.status == "active" and session.has_pending():
                session.run_state = "ready"
                self._enqueue_locked(session)
                self._cond.notify()

    # -- lifecycle / observability ---------------------------------------------

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "quantum": self.quantum,
                "ready_sessions": sum(len(b) for b in self._buckets.values()),
                "tenants_in_rotation": len(self._rotation),
                "pushes": self.pushes,
                "pops": self.pops,
                "deficit": {t: round(d, 1) for t, d in self._deficit.items()},
            }
