"""Shard worker: owner of one shard's posting-list state.

A :class:`ShardWorker` holds the posting lists (and the posting arena
behind them) of the dimensions its shard owns, plus the compute kernel
that scans them.  It executes exactly two operations, both issued by the
coordinator in a strict per-shard order:

``apply_appends``
    Append postings shipped by the coordinator — indexing of a new vector
    and re-indexing moves alike.  The coordinator sends the *global* slot
    it interned for the vector, so the slots stored in every shard's arena
    live in one shared id space and partials merge without translation.
``scan``
    Gather the scan partials of the query terms this shard owns (time
    filtering + per-posting products, **no** global admission — see
    :class:`repro.backends.base.SegmentPartial`) and report the logical
    ``traversed``/``removed`` counts.

The same class backs both execution modes: the serial in-process executor
calls it directly (making the whole subsystem testable without spawning
anything), and :func:`shard_worker_main` wraps it in a child-process
message loop for the multiprocess executor, with the arena allocated from
``multiprocessing.shared_memory`` segments.
"""

from __future__ import annotations

from typing import Any

from repro import obs
from repro.backends import get_backend
from repro.backends.base import SegmentPartial
from repro.core.results import ShardCounters
from repro.indexes.posting import InvertedIndex, PostingEntry

__all__ = ["ShardWorker", "apply_step", "make_worker_kernel",
           "shard_worker_main", "pack_partials", "unpack_partials"]


def pack_partials(partials: list[SegmentPartial]):
    """Flatten a scan reply's partials into one set of concatenated arrays.

    Pickling one array per field instead of four per *segment* cuts the
    serialisation cost of a reply by an order of magnitude on skewed
    vocabularies (dozens of small segments per query).  Values are
    byte-identical — :func:`unpack_partials` re-slices the concatenation at
    the recorded segment boundaries.
    """
    if not partials:
        return None
    import numpy as np

    metadata = [(partial.position, partial.value, partial.query_prefix_norm,
                 partial.min_ts, partial.max_ts, partial.traversed,
                 partial.removed, len(partial.slots))
                for partial in partials]

    def concatenate(field: str):
        arrays = [getattr(partial, field) for partial in partials]
        if arrays[0] is None:
            return None
        return arrays[0] if len(arrays) == 1 else np.concatenate(arrays)

    return (metadata, concatenate("slots"), concatenate("contrib"),
            concatenate("tails"), concatenate("decay_factors"),
            concatenate("timestamps"))


def unpack_partials(packed) -> list[SegmentPartial]:
    """Inverse of :func:`pack_partials` (returns views into the buffers)."""
    if packed is None:
        return []
    metadata, slots, contrib, tails, decay_factors, timestamps = packed
    partials: list[SegmentPartial] = []
    offset = 0
    for (position, value, query_prefix_norm, min_ts, max_ts, traversed,
         removed, count) in metadata:
        upper = offset + count
        partials.append(SegmentPartial(
            position=position, value=value,
            query_prefix_norm=query_prefix_norm,
            slots=slots[offset:upper], contrib=contrib[offset:upper],
            tails=tails[offset:upper] if tails is not None else None,
            decay_factors=(decay_factors[offset:upper]
                           if decay_factors is not None else None),
            timestamps=(timestamps[offset:upper]
                        if timestamps is not None else None),
            min_ts=min_ts, max_ts=max_ts, traversed=traversed,
            removed=removed,
        ))
        offset = upper
    return partials


def make_worker_kernel(backend: str = "numpy", *, allocator=None):
    """Build a worker's compute kernel, shared-memory backed if requested.

    The kernel is warmed before use: the compiled tier's one-time JIT
    compilation must happen here, not inside the first ``scan`` — a
    multi-second compile during a step would trip the coordinator's
    recv timeout and look like a crashed worker.
    """
    kernel_cls = get_backend(backend)
    if allocator is not None:
        kernel = kernel_cls(arena_allocator=allocator)
    else:
        kernel = kernel_cls()
    kernel.warmup()
    return kernel


class ShardWorker:
    """One shard's posting state plus the gather half of the scans."""

    def __init__(self, shard: int, kernel) -> None:
        self.shard = shard
        self.kernel = kernel
        self.index = InvertedIndex(kernel.new_posting_list)
        self.counters = ShardCounters(shard=shard)

    # -- index construction ---------------------------------------------------

    def apply_appends(self, appends: list[tuple]) -> None:
        """Apply coordinator-shipped posting appends, in shipping order.

        Each append is ``(slot, dims, values, prefix_norms, timestamp)``
        with parallel per-coordinate lists restricted to this shard's
        dimensions.
        """
        index = self.index
        appended = 0
        for slot, dims, values, prefix_norms, timestamp in appends:
            for offset, dim in enumerate(dims):
                plist = index.list_for(dim)
                fast = getattr(plist, "_append_fast", None)
                if fast is not None:
                    fast(slot, values[offset], prefix_norms[offset], timestamp)
                else:  # generic posting-list layout (reference backend)
                    plist.append(PostingEntry(
                        vector_id=slot, value=values[offset],
                        prefix_norm=prefix_norms[offset], timestamp=timestamp))
            index.note_added(len(dims))
            appended += len(dims)
        self.counters.entries_indexed += appended

    # -- candidate generation (gather half) -----------------------------------

    def scan(self, terms: list[tuple], params: dict[str, Any]) -> tuple[list, int, int]:
        """Gather the partials of this shard's query terms.

        ``terms`` is ``(position, dim, value, query_prefix_norm)`` per
        owned prefix-scheme term (descending position) or
        ``(position, dim, value)`` per INV term (ascending position);
        ``params`` carries the scan parameters including ``kind``.
        Returns ``(partials, entries_traversed, entries_removed)``.
        """
        kernel = self.kernel
        kernel.begin_maintenance_cycle()
        self.counters.scans += 1
        index_get = self.index.get
        if params["kind"] == "inv":
            inv_segments = []
            for position, dim, value in terms:
                plist = index_get(dim)
                if plist is not None and len(plist):
                    inv_segments.append((position, value, plist))
            partials, traversed, removed = kernel.gather_inv_partials(
                inv_segments, cutoff=params["cutoff"])
        else:
            segments = []
            for position, dim, value, query_prefix_norm in terms:
                plist = index_get(dim)
                if plist is not None and len(plist):
                    segments.append((position, value, query_prefix_norm, plist))
            partials, traversed, removed = kernel.gather_scan_partials(
                segments, now=params["now"], cutoff=params["cutoff"],
                decay=params["decay"], use_l2=params["use_l2"],
                time_ordered=params["time_ordered"])
        self.counters.entries_traversed += traversed
        self.counters.entries_removed += removed
        if removed:
            self.index.note_removed(removed)
        return partials, traversed, removed

    # -- observability ---------------------------------------------------------

    def snapshot_counters(self) -> ShardCounters:
        """Current counters, with the dimension count and arena stats filled in."""
        self.counters.dimensions = sum(1 for _ in self.index.dimensions())
        arena = getattr(self.kernel, "_arena", None)
        if arena is not None:
            self.counters.arena_compactions = arena.compactions
        self._export_counters()
        return self.counters

    def _export_counters(self) -> None:
        """Mirror the snapshot onto the metrics registry (serial executor).

        In the multiprocess executor this runs in the child, where the
        registry is per-process and never scraped — harmless.  Counter
        totals are monotone, so ``set_total`` is the right export.
        """
        if not obs.enabled():
            return
        registry = obs.get_registry()
        label = str(self.shard)
        counters = self.counters
        registry.counter(
            "sssj_shard_entries_traversed_total",
            "Posting entries traversed by shard scans.",
            ("shard",)).labels(shard=label).set_total(
            counters.entries_traversed)
        registry.counter(
            "sssj_shard_entries_indexed_total",
            "Posting entries appended per shard.",
            ("shard",)).labels(shard=label).set_total(
            counters.entries_indexed)
        registry.gauge(
            "sssj_shard_dimensions",
            "Dimensions owned by each shard.",
            ("shard",)).labels(shard=label).set(counters.dimensions)


def apply_step(worker: ShardWorker, message: tuple):
    """Apply one coordinator ``("step", ...)`` message to ``worker``.

    Returns the scan result ``(partials, traversed, removed)``, or
    ``None`` for a flush-only step.  This is the single definition of
    "what a step does to shard state" — the live message loop, the
    crash-recovery replay and the executor's degraded in-process mode
    all route through it, which is what makes a rebuilt shard bitwise
    identical to the one that died.
    """
    _, appends, scan_terms, scan_params = message
    if appends:
        worker.apply_appends(appends)
    if scan_terms is None:
        return None
    return worker.scan(scan_terms, scan_params)


def shard_worker_main(conn, shard: int, use_shared_memory: bool = True,
                      backend: str = "numpy", faults=None) -> None:
    """Child-process message loop of one shard (multiprocess executor).

    Protocol (requests over ``conn``):

    * ``("step", appends, scan_terms, scan_params)`` — apply the appends,
      then scan; replies ``("partials", partials, traversed, removed)``,
      or ``("ok",)`` when ``scan_terms`` is ``None`` (flush-only step).
    * ``("replay", steps)`` — crash recovery: re-apply a chunk of step
      messages, discarding their scan output (the coordinator already
      consumed the original replies); replies ``("replayed", count)``.
    * ``("counters",)`` — replies ``("counters", ShardCounters)``.
    * ``("stop",)`` — replies ``("bye",)`` and exits.

    ``faults`` is an optional list of ``(kind, after_step, ms)`` tuples
    from :meth:`repro.faults.FaultInjector.worker_events_for` — faults
    this worker fires *on itself* (self-SIGKILL mid-step, dropped or
    delayed replies) so chaos tests exercise real partial failures.
    Replay messages do not advance the fault step counter, and respawned
    workers are started fault-free.
    """
    allocator = None
    # The numba backend shares the numpy arena layout, so both can place
    # their postings in shared memory.
    if use_shared_memory and backend in ("numpy", "numba"):
        from repro.shard.shm import SharedMemoryAllocator

        allocator = SharedMemoryAllocator(name_prefix=f"sssj-shard{shard}")
    worker = ShardWorker(shard, make_worker_kernel(backend, allocator=allocator))
    fault_map: dict[int, list[tuple[str, float]]] = {}
    for kind, after, ms in faults or ():
        fault_map.setdefault(after, []).append((kind, ms))
    steps = 0
    try:
        while True:
            message = conn.recv()
            op = message[0]
            if op == "step":
                steps += 1
                active = fault_map.pop(steps, ())
                _, appends, scan_terms, scan_params = message
                if appends:
                    worker.apply_appends(appends)
                if any(kind == "exit-in-append" for kind, _ in active):
                    import os
                    import signal

                    os.kill(os.getpid(), signal.SIGKILL)
                if scan_terms is None:
                    reply = ("ok",)
                else:
                    partials, traversed, removed = worker.scan(scan_terms,
                                                               scan_params)
                    reply = ("partials", pack_partials(partials),
                             traversed, removed)
                if any(kind == "exit-in-scan" for kind, _ in active):
                    import os
                    import signal

                    os.kill(os.getpid(), signal.SIGKILL)
                if any(kind == "drop-reply" for kind, _ in active):
                    continue  # swallow exactly this reply; stay alive
                for kind, ms in active:
                    if kind == "delay-reply":
                        import time

                        time.sleep(ms / 1000.0)
                conn.send(reply)
            elif op == "replay":
                for step_message in message[1]:
                    apply_step(worker, step_message)
                conn.send(("replayed", len(message[1])))
            elif op == "counters":
                conn.send(("counters", worker.snapshot_counters()))
            elif op == "stop":
                conn.send(("bye",))
                break
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        pass  # coordinator went away; shut down quietly
    finally:
        if allocator is not None:
            # Release the arena (and the kernel↔arena reference cycle) so
            # no view into the shared segments survives, then close them —
            # otherwise SharedMemory.__del__ noisily fails to unmap
            # buffers that numpy still points at.
            import gc

            del worker
            gc.collect()
            allocator.close()
        conn.close()
