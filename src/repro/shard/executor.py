"""Execution backends for the sharded join: serial in-process and multiprocess.

Both executors present the same tiny interface to the coordinator:

``queue_append(shard, slot, dims, values, prefix_norms, timestamp)``
    Buffer a posting append for ``shard``.  Appends are *not* sent
    immediately — they ride along with the next ``exchange`` (or an
    explicit ``flush``), so one vector costs one message per shard.
``exchange(requests, params)``
    Deliver the buffered appends plus one scan request per shard, in
    order, and return each shard's ``(partials, traversed, removed)``.
    The per-shard operation order (scan of vector *i* before the postings
    of vector *i*, before the scan of vector *i+1*) is what makes the
    sharded run bitwise identical to the single-process one.
``flush`` / ``counters`` / ``close``
    Drain buffered appends, snapshot per-shard counters, shut down.

:class:`SerialShardExecutor` runs every shard worker in-process and
synchronously — no processes, no pickling — which makes the whole
subsystem testable and CI-safe; it is also the natural ``workers=1``
configuration.  :class:`ProcessShardExecutor` spawns one child process
per shard (fork server where available), ships requests over pipes and
keeps each worker's posting arena in shared memory; all shards scan
concurrently, which is where the parallel speedup comes from.
"""

from __future__ import annotations

import multiprocessing
from typing import Any

from repro.core.results import ShardCounters
from repro.shard.plan import ShardPlan
from repro.shard.worker import (
    ShardWorker,
    make_worker_kernel,
    shard_worker_main,
    unpack_partials,
)

__all__ = ["SerialShardExecutor", "ProcessShardExecutor", "create_executor"]


class SerialShardExecutor:
    """All shard workers in-process; calls run synchronously in shard order."""

    kind = "serial"

    def __init__(self, plan: ShardPlan, *, backend: str = "numpy") -> None:
        self.plan = plan
        self.workers = [ShardWorker(shard, make_worker_kernel(backend))
                        for shard in range(plan.workers)]
        self._pending: list[list[tuple]] = [[] for _ in range(plan.workers)]

    def queue_append(self, shard: int, slot: int, dims, values, prefix_norms,
                     timestamp: float) -> None:
        self._pending[shard].append((slot, dims, values, prefix_norms, timestamp))

    def exchange(self, requests: list[list[tuple]],
                 params: dict[str, Any]) -> list[tuple[list, int, int]]:
        replies = []
        for shard, worker in enumerate(self.workers):
            pending = self._pending[shard]
            if pending:
                worker.apply_appends(pending)
                self._pending[shard] = []
            replies.append(worker.scan(requests[shard], params))
        return replies

    def flush(self) -> None:
        for shard, worker in enumerate(self.workers):
            pending = self._pending[shard]
            if pending:
                worker.apply_appends(pending)
                self._pending[shard] = []

    def counters(self) -> list[ShardCounters]:
        return [worker.snapshot_counters() for worker in self.workers]

    def close(self) -> None:
        self.flush()


class ProcessShardExecutor:
    """One child process per shard, pipes for control, shared-memory arenas.

    ``exchange`` first *sends* to every shard, then *collects* from every
    shard, so the per-vector scan work of all shards overlaps — the
    round-trip latency is paid once per vector, not once per shard.
    """

    kind = "process"

    def __init__(self, plan: ShardPlan, *, backend: str = "numpy",
                 use_shared_memory: bool = True,
                 start_method: str | None = None) -> None:
        self.plan = plan
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        context = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self._conns = []
        self._procs = []
        self._pending: list[list[tuple]] = [[] for _ in range(plan.workers)]
        self._closed = False
        for shard in range(plan.workers):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=shard_worker_main,
                args=(child_conn, shard, use_shared_memory, backend),
                name=f"sssj-shard-{shard}", daemon=True)
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(process)

    def queue_append(self, shard: int, slot: int, dims, values, prefix_norms,
                     timestamp: float) -> None:
        self._pending[shard].append((slot, dims, values, prefix_norms, timestamp))

    def exchange(self, requests: list[list[tuple]],
                 params: dict[str, Any]) -> list[tuple[list, int, int]]:
        conns = self._conns
        pending = self._pending
        # Fan out first so every shard scans concurrently ...
        for shard, conn in enumerate(conns):
            conn.send(("step", pending[shard], requests[shard], params))
            pending[shard] = []
        # ... then fan in, in shard order (determinism of the merge).
        replies = []
        for conn in conns:
            reply = conn.recv()
            replies.append((unpack_partials(reply[1]), reply[2], reply[3]))
        return replies

    def flush(self) -> None:
        for shard, conn in enumerate(self._conns):
            if self._pending[shard]:
                conn.send(("step", self._pending[shard], None, None))
                self._pending[shard] = []
                reply = conn.recv()
                assert reply[0] == "ok", reply

    def counters(self) -> list[ShardCounters]:
        for conn in self._conns:
            conn.send(("counters",))
        return [conn.recv()[1] for conn in self._conns]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.flush()
            for conn in self._conns:
                conn.send(("stop",))
            for conn in self._conns:
                try:
                    conn.recv()  # ("bye",)
                except EOFError:
                    pass
        except (BrokenPipeError, OSError):
            pass
        for conn in self._conns:
            conn.close()
        for process in self._procs:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=1)


def create_executor(plan: ShardPlan, kind: str = "process", *,
                    backend: str = "numpy", use_shared_memory: bool = True,
                    start_method: str | None = None):
    """Build the executor named by ``kind`` (``"serial"`` or ``"process"``)."""
    if kind == "serial":
        return SerialShardExecutor(plan, backend=backend)
    if kind == "process":
        return ProcessShardExecutor(plan, backend=backend,
                                    use_shared_memory=use_shared_memory,
                                    start_method=start_method)
    raise ValueError(f"unknown shard executor {kind!r}; "
                     f"expected 'serial' or 'process'")
