"""Execution backends for the sharded join: serial in-process and multiprocess.

Both executors present the same tiny interface to the coordinator:

``queue_append(shard, slot, dims, values, prefix_norms, timestamp)``
    Buffer a posting append for ``shard``.  Appends are *not* sent
    immediately — they ride along with the next ``exchange`` (or an
    explicit ``flush``), so one vector costs one message per shard.
``exchange(requests, params)``
    Deliver the buffered appends plus one scan request per shard, in
    order, and return each shard's ``(partials, traversed, removed)``.
    The per-shard operation order (scan of vector *i* before the postings
    of vector *i*, before the scan of vector *i+1*) is what makes the
    sharded run bitwise identical to the single-process one.
``flush`` / ``counters`` / ``close``
    Drain buffered appends, snapshot per-shard counters, shut down.

:class:`SerialShardExecutor` runs every shard worker in-process and
synchronously — no processes, no pickling — which makes the whole
subsystem testable and CI-safe; it is also the natural ``workers=1``
configuration.  :class:`ProcessShardExecutor` spawns one child process
per shard (fork server where available), ships requests over pipes and
keeps each worker's posting arena in shared memory; all shards scan
concurrently, which is where the parallel speedup comes from.

Fault tolerance
---------------
:class:`ProcessShardExecutor` survives worker deaths.  Every receive is
bounded by ``recv_timeout`` and watches the child's ``Process.sentinel``,
so a SIGKILLed (or hung) worker is *detected* instead of hanging the
coordinator.  Recovery is respawn-and-replay: the executor keeps the
full per-shard step history (every message a shard acknowledged), spawns
a fresh worker, replays the history in chunks — a shard's state is a
deterministic function of its message sequence, so the rebuilt posting
arena, expiry bookkeeping and counters are bitwise identical to the lost
ones — then re-issues the in-flight step once.  After ``max_respawns``
failed attempts the executor degrades to in-process execution: every
shard's history is replayed into a local :class:`ShardWorker` and the run
continues serially rather than dying.  Set ``recovery=False`` to skip
the history log (saves memory; deaths then raise
:class:`~repro.exceptions.ShardWorkerError`).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from multiprocessing import connection as _mp_connection
from typing import Any

from repro import obs
from repro.core.results import ShardCounters
from repro.exceptions import InvalidParameterError, ShardWorkerError
from repro.shard.plan import ShardPlan
from repro.shard.worker import (
    ShardWorker,
    apply_step,
    make_worker_kernel,
    shard_worker_main,
    unpack_partials,
)

__all__ = ["SerialShardExecutor", "ProcessShardExecutor", "create_executor"]


def _count_recovery(kind: str) -> None:
    """Recovery events are rare and exceptional — count them inline."""
    if obs.enabled():
        obs.get_registry().counter(
            "sssj_shard_recovery_events_total",
            "Shard worker recovery events by kind.",
            ("kind",)).labels(kind=kind).inc()


class SerialShardExecutor:
    """All shard workers in-process; calls run synchronously in shard order."""

    kind = "serial"

    def __init__(self, plan: ShardPlan, *, backend: str = "numpy") -> None:
        self.plan = plan
        self.workers = [ShardWorker(shard, make_worker_kernel(backend))
                        for shard in range(plan.workers)]
        self._pending: list[list[tuple]] = [[] for _ in range(plan.workers)]

    def queue_append(self, shard: int, slot: int, dims, values, prefix_norms,
                     timestamp: float) -> None:
        self._pending[shard].append((slot, dims, values, prefix_norms, timestamp))

    def exchange(self, requests: list[list[tuple]],
                 params: dict[str, Any]) -> list[tuple[list, int, int]]:
        replies = []
        for shard, worker in enumerate(self.workers):
            pending = self._pending[shard]
            if pending:
                worker.apply_appends(pending)
                self._pending[shard] = []
            replies.append(worker.scan(requests[shard], params))
        return replies

    def flush(self) -> None:
        for shard, worker in enumerate(self.workers):
            pending = self._pending[shard]
            if pending:
                worker.apply_appends(pending)
                self._pending[shard] = []

    def counters(self) -> list[ShardCounters]:
        return [worker.snapshot_counters() for worker in self.workers]

    def close(self) -> None:
        self.flush()


class ProcessShardExecutor:
    """One child process per shard, pipes for control, shared-memory arenas.

    ``exchange`` first *sends* to every shard, then *collects* from every
    shard, so the per-vector scan work of all shards overlaps — the
    round-trip latency is paid once per vector, not once per shard.

    Worker deaths (and replies delayed past ``recv_timeout``) are
    recovered by respawn-and-replay, degrading to in-process execution
    after ``max_respawns`` failed attempts — see the module docstring.
    Recoveries are appended to :attr:`recovery_events`; :attr:`degraded`
    flips to ``True`` once the executor has fallen back to serial mode.
    """

    kind = "process"

    #: Steps per replay message during recovery — bounds both the pickled
    #: message size and the per-recv wait (each chunk is acknowledged
    #: within ``recv_timeout``).
    _REPLAY_CHUNK = 128

    def __init__(self, plan: ShardPlan, *, backend: str = "numpy",
                 use_shared_memory: bool = True,
                 start_method: str | None = None,
                 recv_timeout: float = 10.0,
                 max_respawns: int = 3,
                 recovery: bool = True,
                 faults=None) -> None:
        self.plan = plan
        self.backend = backend
        self.use_shared_memory = use_shared_memory
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._context = multiprocessing.get_context(start_method)
        self.start_method = start_method
        if recv_timeout <= 0:
            raise InvalidParameterError(
                f"recv_timeout must be > 0, got {recv_timeout}")
        if max_respawns < 0:
            raise InvalidParameterError(
                f"max_respawns must be >= 0, got {max_respawns}")
        self.recv_timeout = float(recv_timeout)
        self.max_respawns = int(max_respawns)
        self.recovery_enabled = bool(recovery)
        self.faults = faults
        if faults is not None:
            faults.bind_workers(plan.workers)
        workers = plan.workers
        self._conns: list = [None] * workers
        self._procs: list = [None] * workers
        self._pending: list[list[tuple]] = [[] for _ in range(workers)]
        #: Per-shard log of acknowledged step messages — the replay source
        #: for crash recovery (grows with the stream; ``recovery=False``
        #: disables it).
        self._history: list[list[tuple]] = [[] for _ in range(workers)]
        self._steps = [0] * workers
        self._closed = False
        self.degraded = False
        self._serial_workers: list[ShardWorker] | None = None
        self.respawns = 0
        self.recovery_events: list[dict] = []
        try:
            for shard in range(workers):
                self._spawn(shard, initial=True)
        except BaseException:
            for process in self._procs:
                if process is not None and process.is_alive():
                    process.kill()
                    process.join(timeout=1)
            raise

    # -- worker lifecycle ------------------------------------------------------

    def _spawn(self, shard: int, *, initial: bool) -> None:
        parent_conn, child_conn = self._context.Pipe()
        worker_faults = None
        if initial and self.faults is not None:
            worker_faults = self.faults.worker_events_for(shard) or None
        process = self._context.Process(
            target=shard_worker_main,
            args=(child_conn, shard, self.use_shared_memory, self.backend,
                  worker_faults),
            name=f"sssj-shard-{shard}", daemon=True)
        process.start()
        child_conn.close()
        self._conns[shard] = parent_conn
        self._procs[shard] = process

    def _reap(self, shard: int) -> None:
        """Tear down a shard's (possibly dead) process and pipe."""
        conn, process = self._conns[shard], self._procs[shard]
        try:
            conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        if process.is_alive():
            process.kill()
        process.join(timeout=5)

    def _kill_worker(self, shard: int) -> None:
        """Fault injection: SIGKILL the shard's worker, for real."""
        process = self._procs[shard]
        if process.is_alive():
            os.kill(process.pid, signal.SIGKILL)
            process.join(timeout=5)

    # -- coordinator-facing interface ------------------------------------------

    def queue_append(self, shard: int, slot: int, dims, values, prefix_norms,
                     timestamp: float) -> None:
        self._pending[shard].append((slot, dims, values, prefix_norms, timestamp))

    def exchange(self, requests: list[list[tuple]],
                 params: dict[str, Any]) -> list[tuple[list, int, int]]:
        messages = []
        for shard in range(self.plan.workers):
            messages.append(("step", self._pending[shard], requests[shard],
                             params))
            self._pending[shard] = []
        # Fan out first so every shard scans concurrently ...
        for shard, message in enumerate(messages):
            self._send_step(shard, message)
        # ... then fan in, in shard order (determinism of the merge).
        return [self._collect_step(shard, message)
                for shard, message in enumerate(messages)]

    def flush(self) -> None:
        messages = {}
        for shard in range(self.plan.workers):
            if self._pending[shard]:
                messages[shard] = ("step", self._pending[shard], None, None)
                self._pending[shard] = []
        for shard, message in messages.items():
            self._send_step(shard, message)
        for shard, message in messages.items():
            self._collect_step(shard, message)

    def counters(self) -> list[ShardCounters]:
        snapshots = []
        for shard in range(self.plan.workers):
            if self.degraded:
                snapshots.append(
                    self._serial_workers[shard].snapshot_counters())
                continue
            try:
                self._conns[shard].send(("counters",))
                reply = self._recv_with_deadline(shard)
            except ShardWorkerError as error:
                reply = self._recover(shard, ("counters",), error)
            except (BrokenPipeError, OSError) as error:
                reply = self._recover(
                    shard, ("counters",),
                    ShardWorkerError(str(error), shard=shard))
            if reply is None:  # degraded while recovering this query
                snapshots.append(
                    self._serial_workers[shard].snapshot_counters())
            else:
                snapshots.append(reply[1])
        return snapshots

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.flush()
        except ShardWorkerError:
            pass  # recovery disabled and a worker is gone; close anyway
        if self.degraded:
            return  # no processes left to stop
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            # Bounded farewell: a worker that already died never writes
            # ("bye",), so poll with a deadline instead of blocking in
            # recv() forever.
            try:
                if conn.poll(1.0):
                    conn.recv()
            except (EOFError, OSError):
                pass
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        for process in self._procs:
            process.join(timeout=5)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1)
            if process.is_alive():  # pragma: no cover - defensive
                process.kill()
                process.join(timeout=1)

    # -- step plumbing ---------------------------------------------------------

    def _send_step(self, shard: int, message: tuple) -> None:
        if self.degraded:
            return  # applied in-process at collect time
        self._steps[shard] += 1
        if (self.faults is not None
                and self.faults.worker_kill_due(shard, self._steps[shard])):
            self._kill_worker(shard)
        try:
            self._conns[shard].send(message)
        except (BrokenPipeError, OSError):
            pass  # death is detected — and recovered — at collect time

    def _collect_step(self, shard: int, message: tuple):
        if self.degraded:
            return self._apply_step_serial(shard, message)
        try:
            reply = self._recv_with_deadline(shard)
        except ShardWorkerError as error:
            reply = self._recover(shard, message, error)
            if reply is None:  # recovery exhausted → executor degraded
                return self._apply_step_serial(shard, message)
            return self._reply_value(shard, reply)
        if self.recovery_enabled:
            self._history[shard].append(message)
        return self._reply_value(shard, reply)

    @staticmethod
    def _reply_value(shard: int, reply: tuple):
        if reply[0] == "partials":
            return (unpack_partials(reply[1]), reply[2], reply[3])
        if reply[0] == "ok":
            return None
        raise ShardWorkerError(
            f"shard {shard}: unexpected reply {reply[0]!r}", shard=shard)

    def _recv_with_deadline(self, shard: int):
        """Receive one reply, bounded by ``recv_timeout`` and death-aware.

        Waits on the pipe *and* the worker's ``Process.sentinel`` at once,
        so a SIGKILLed child surfaces immediately (draining a complete
        reply the child managed to write first) and a hung child surfaces
        at the deadline — the coordinator never blocks unboundedly.
        """
        conn = self._conns[shard]
        process = self._procs[shard]
        deadline = time.monotonic() + self.recv_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ShardWorkerError(
                    f"shard {shard} worker (pid {process.pid}) did not "
                    f"reply within {self.recv_timeout:g}s", shard=shard)
            ready = _mp_connection.wait([conn, process.sentinel],
                                        timeout=remaining)
            if conn in ready:
                try:
                    return conn.recv()
                except (EOFError, OSError):
                    raise ShardWorkerError(
                        f"shard {shard} worker (pid {process.pid}) died "
                        "mid-reply", shard=shard) from None
            if process.sentinel in ready:
                if conn.poll(0):  # full reply written before dying
                    try:
                        return conn.recv()
                    except (EOFError, OSError):
                        pass
                raise ShardWorkerError(
                    f"shard {shard} worker (pid {process.pid}) died "
                    f"(exit code {process.exitcode})", shard=shard)

    # -- crash recovery --------------------------------------------------------

    def _recover(self, shard: int, message: tuple, error: ShardWorkerError):
        """Respawn-and-replay ``shard``, then re-issue ``message`` once.

        Returns the raw reply on success, or ``None`` after degrading to
        in-process execution (the caller then applies ``message`` to the
        serial twin).  With ``recovery=False`` the original error is
        re-raised unchanged.
        """
        if not self.recovery_enabled:
            raise error
        started = time.monotonic()
        history = self._history[shard]
        last_error = error
        for attempt in range(1, self.max_respawns + 1):
            self._reap(shard)
            try:
                self._spawn(shard, initial=False)
                self._replay(shard)
                self._conns[shard].send(message)
                reply = self._recv_with_deadline(shard)
            except (ShardWorkerError, OSError) as respawn_error:
                last_error = respawn_error
                continue
            self.respawns += 1
            _count_recovery("respawn")
            details = {"shard": shard, "attempt": attempt,
                       "replayed_steps": len(history),
                       "latency_s": time.monotonic() - started}
            self.recovery_events.append(
                {"kind": "respawn", "cause": str(error), **details})
            if self.faults is not None:
                self.faults.record("recovered", **details)
            if message[0] == "step":
                history.append(message)
            return reply
        self._degrade(cause=str(last_error))
        return None

    def _replay(self, shard: int) -> None:
        """Rebuild a fresh worker's state from the shard's step history."""
        history = self._history[shard]
        conn = self._conns[shard]
        for start in range(0, len(history), self._REPLAY_CHUNK):
            chunk = history[start:start + self._REPLAY_CHUNK]
            conn.send(("replay", chunk))
            reply = self._recv_with_deadline(shard)
            if reply != ("replayed", len(chunk)):
                raise ShardWorkerError(
                    f"shard {shard}: replay acknowledged {reply!r} for a "
                    f"{len(chunk)}-step chunk", shard=shard)

    def _degrade(self, *, cause: str) -> None:
        """Last rung of the ladder: continue the run in-process.

        Every shard's history is replayed into a local
        :class:`ShardWorker` (regular heap arenas — shared memory serves
        no purpose in-process), the child processes are reaped, and all
        subsequent steps run serially.  Slower, but the stream — and the
        bitwise determinism contract — survive.
        """
        for shard in range(self.plan.workers):
            self._reap(shard)
        started = time.monotonic()
        workers = []
        for shard in range(self.plan.workers):
            worker = ShardWorker(shard, make_worker_kernel(self.backend))
            for message in self._history[shard]:
                apply_step(worker, message)
            workers.append(worker)
        self._serial_workers = workers
        self.degraded = True
        _count_recovery("degrade")
        replayed = sum(len(history) for history in self._history)
        self._history = [[] for _ in range(self.plan.workers)]
        event = {"kind": "degrade", "cause": cause,
                 "respawn_attempts": self.max_respawns,
                 "replayed_steps": replayed,
                 "latency_s": time.monotonic() - started}
        self.recovery_events.append(event)
        if self.faults is not None:
            self.faults.record("degraded", cause=cause,
                               replayed_steps=replayed)

    def _apply_step_serial(self, shard: int, message: tuple):
        return apply_step(self._serial_workers[shard], message)


def create_executor(plan: ShardPlan, kind: str = "process", *,
                    backend: str = "numpy", use_shared_memory: bool = True,
                    start_method: str | None = None,
                    recv_timeout: float = 10.0, max_respawns: int = 3,
                    recovery: bool = True, faults=None):
    """Build the executor named by ``kind`` (``"serial"`` or ``"process"``)."""
    if kind == "serial":
        if faults is not None and faults.plan.worker_events:
            raise InvalidParameterError(
                "worker fault injection (kill-worker/exit-in-*/drop-reply/"
                "delay-reply) requires the process executor; the serial "
                "executor has no worker processes to break")
        return SerialShardExecutor(plan, backend=backend)
    if kind == "process":
        return ProcessShardExecutor(plan, backend=backend,
                                    use_shared_memory=use_shared_memory,
                                    start_method=start_method,
                                    recv_timeout=recv_timeout,
                                    max_respawns=max_respawns,
                                    recovery=recovery, faults=faults)
    raise ValueError(f"unknown shard executor {kind!r}; "
                     f"expected 'serial' or 'process'")
