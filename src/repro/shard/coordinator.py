"""Coordinator of the sharded streaming join.

One join, N shard workers.  The coordinator is the *single-process driver
with the posting lists removed*: it keeps everything whose decisions are
globally sequential — the residual/``Q`` store, the maximum vectors and
re-indexing, the remaining-score bound maintenance, candidate
verification, the operation counters — and it farms out the per-dimension
posting state to the shards.  Per arriving vector:

1. **fan-out** — split the query's terms by owning shard and ship one scan
   request per shard (buffered posting appends of the previous vector and
   of this vector's re-indexing ride along, so one vector costs one
   message per shard);
2. **gather** — each worker time-filters and gathers its terms' postings
   into :class:`~repro.backends.base.SegmentPartial` arrays, stopping
   before global admission;
3. **merge + replay** — the coordinator reorders the partials into the
   global scan order (descending query position), recomputes the
   remaining-score bounds at each segment, and replays the exact fused
   admission/pruning/accumulation pass of the single-process NumPy kernel
   (:meth:`~repro.backends.numpy_backend.NumpyKernel.apply_scan_partials`)
   over them;
4. **verify + index** — verification and indexing run unchanged through
   the :class:`~repro.indexes.prefix.PrefixFilterStreamingIndex` driver;
   the new vector's postings are routed to their owning shards with the
   coordinator's interned slot.

Determinism contract
--------------------
A sharded run is **bitwise identical** to the single-process NumPy run —
same pairs, same similarities, same operation counters — for every worker
count.  This holds because (a) whole dimensions are assigned to single
shards, so every posting list's content and order is identical to the
single-process list; (b) workers only precompute elementwise products
(``x_j·y_j``, decay factors, ``l2bound`` tails) that the fused kernel
computes identically; and (c) every *decision* — admission tri-state,
``sz1``, ``l2bound`` pruning, verification bounds, the final
similarities — is taken by the coordinator in the single-process order.
``tests/test_shard.py`` pins this down property-by-property.
"""

from __future__ import annotations

import math
import time

from repro import obs
from repro.core.frameworks.base import JoinFramework
from repro.core.results import JoinStatistics, ShardCounters, SimilarPair
from repro.core.vector import SparseVector
from repro.exceptions import InvalidParameterError, UnknownAlgorithmError
from repro.indexes.inverted import InvertedStreamingIndex
from repro.indexes.l2 import L2StreamingIndex
from repro.indexes.l2ap import L2APStreamingIndex
from repro.indexes.allpairs import APStreamingIndex
from repro.shard.executor import create_executor
from repro.shard.plan import ShardPlan

__all__ = [
    "ShardedStreamingJoin",
    "create_sharded_join",
    "ShardedL2APStreamingIndex",
    "ShardedL2StreamingIndex",
    "ShardedAPStreamingIndex",
    "ShardedInvStreamingIndex",
]

_INF = math.inf


def _collect_shard_join(join: "ShardedStreamingJoin") -> None:
    """Scrape-time collector: coordinator stage timings and executor health.

    Deliberately does NOT call :meth:`shard_counters` — that flushes
    buffered appends over the worker pipes, and a scrape must never
    perturb the stream.  Per-shard counters stay on the ``stats``
    endpoint; only coordinator-side accumulators are exported here.
    """
    registry = obs.get_registry()
    tracker = join._obs_tracker
    stages = registry.counter(
        "sssj_shard_stage_seconds_total",
        "Coordinator wall-clock per sharded-join stage.", ("stage",))
    for stage, seconds in join.stage_seconds.items():
        tracker.export(stages.labels(stage=stage), ("stage", stage), seconds)
    registry.gauge("sssj_shard_workers",
                   "Shard workers in the current plan.").labels().set(
        join.workers)
    registry.gauge("sssj_shard_degraded",
                   "1 when the executor fell back to in-process "
                   "execution.").labels().set(1 if join.degraded else 0)
    respawns = getattr(join._executor, "respawns", 0)
    tracker.export(registry.counter(
        "sssj_shard_respawns_total",
        "Successful shard worker respawns.").labels(), "respawns", respawns)


class _ShardPostingStub:
    """Counting-only stand-in for the coordinator's inverted index.

    The coordinator never stores postings — the shards do — but the driver
    tracks the global posting count (``max_index_size``, eviction
    bookkeeping) through the ``InvertedIndex`` counting interface.
    """

    __slots__ = ("_total",)

    def __init__(self) -> None:
        self._total = 0

    def __len__(self) -> int:
        return self._total

    def note_added(self, count: int) -> None:
        self._total += count

    def note_removed(self, count: int) -> None:
        self._total -= count
        if self._total < 0:  # defensive; should never happen
            self._total = 0


class _ShardedMixinBase:
    """State and append routing shared by the prefix and INV coordinators."""

    _plan: ShardPlan | None = None
    _executor = None

    def check_coordinator_kernel(self) -> None:
        """Fail fast when the kernel cannot replay partial accumulations.

        Called by :class:`ShardedStreamingJoin` *before* any worker is
        spawned, and again by :meth:`attach_executor` for direct users.
        """
        if not hasattr(self.kernel, "apply_scan_partials"):
            raise InvalidParameterError(
                "the sharded coordinator requires a backend with partial-"
                "accumulation replay (the NumPy backend); "
                f"got {self.kernel.name!r}")

    def attach_executor(self, plan: ShardPlan, executor) -> None:
        """Wire the coordinator to its shard executor (post-construction)."""
        self.check_coordinator_kernel()
        self._plan = plan
        self._executor = executor
        #: Wall-clock per coordinator stage (fan-out+gather / replay /
        #: verify), for the benchmark artifact's stage breakdown.
        self.stage_seconds = {"exchange": 0.0, "replay": 0.0, "verify": 0.0}

    def shard_counters(self) -> list[ShardCounters]:
        """Per-shard observability counters (balance, compactions, traffic).

        Flushes buffered appends first so the snapshot covers every vector
        processed so far.
        """
        self._executor.flush()
        return self._executor.counters()

    def _make_index(self) -> _ShardPostingStub:
        return _ShardPostingStub()

    def _route_postings(self, vector: SparseVector, start: int,
                        end: int | None) -> int:
        """Buffer ``vector``'s coordinates ``[start, end)`` to their shards."""
        stop = len(vector) if end is None else end
        count = stop - start
        if count <= 0:
            return 0
        # Interning here matches the single-process kernel: the id was
        # already interned by the size-filter/metadata hooks this driver
        # ran just before appending.
        slot = self.kernel._intern(vector.vector_id)
        dims = vector.dims
        values = vector.values
        prefix_norms = vector._prefix_norms
        timestamp = vector.timestamp
        plan = self._plan
        queue_append = self._executor.queue_append
        if plan.workers == 1:
            queue_append(0, slot, list(dims[start:stop]),
                         list(values[start:stop]),
                         list(prefix_norms[start:stop]), timestamp)
        else:
            for shard, positions in enumerate(
                    plan.split_positions(vector, start, stop)):
                if positions:
                    queue_append(shard, slot,
                                 [dims[p] for p in positions],
                                 [values[p] for p in positions],
                                 [prefix_norms[p] for p in positions],
                                 timestamp)
        self._index.note_added(count)
        return count


class ShardedPrefixScanMixin(_ShardedMixinBase):
    """Sharded overrides of the prefix-filter driver's storage/scan hooks."""

    def _append_postings(self, vector: SparseVector, start: int = 0,
                         end: int | None = None) -> int:
        return self._route_postings(vector, start, end)

    def _scan_query(self, vector: SparseVector, now: float, cutoff: float,
                    rs1: float, decayed_maxima: list[float] | None,
                    sz1: float, accumulator) -> tuple[int, int]:
        plan = self._plan
        dims = vector.dims
        values = vector.values
        prefix_norms = vector._prefix_norms
        requests: list[list[tuple]] = [[] for _ in range(plan.workers)]
        for position in range(len(dims) - 1, -1, -1):
            dim = dims[position]
            requests[plan.shard_of(dim)].append(
                (position, dim, values[position], prefix_norms[position]))
        params = {"kind": "prefix", "now": now, "cutoff": cutoff,
                  "decay": self.decay, "use_l2": self.use_l2,
                  "time_ordered": self.time_ordered}
        stage = self.stage_seconds
        started = time.perf_counter()
        with obs.span("shard_exchange"):
            replies = self._executor.exchange(requests, params)
        stage["exchange"] += time.perf_counter() - started
        partials = [partial for reply in replies for partial in reply[0]]
        traversed = sum(reply[1] for reply in replies)
        removed = sum(reply[2] for reply in replies)
        if not partials:
            return traversed, removed
        started = time.perf_counter()
        # Global scan order: descending query position (positions are
        # unique, so the sort fully determines the merge).
        partials.sort(key=lambda partial: -partial.position)
        seg_bounds = self._segment_bounds(
            vector, rs1, decayed_maxima,
            frozenset(partial.position for partial in partials))
        self.kernel.apply_scan_partials(
            partials, seg_bounds, sz1=sz1, threshold=self.threshold,
            decay=self.decay, now=now, use_ap=self.use_ap,
            use_l2=self.use_l2, acc=accumulator)
        stage["replay"] += time.perf_counter() - started
        return traversed, removed

    def _segment_bounds(self, vector: SparseVector, rs1: float,
                        decayed_maxima: list[float] | None,
                        positions: frozenset[int]) -> list[tuple[float, float]]:
        """``(rs1, rs2)`` at each segment position, in descending order.

        Replays exactly the bound-maintenance loop of the fused
        single-process scan (one decrement per query position, whether or
        not the position has postings), so the recorded bounds are
        bitwise the values the single-process kernel would have used.
        """
        values = vector.values
        use_ap = self.use_ap
        use_l2 = self.use_l2
        rst = vector.norm * vector.norm
        rs2 = math.sqrt(rst) if use_l2 else _INF
        bounds: list[tuple[float, float]] = []
        for position in range(len(values) - 1, -1, -1):
            value = values[position]
            if position in positions:
                bounds.append((rs1, rs2))
            if use_ap:
                rs1 -= value * decayed_maxima[position]  # type: ignore[index]
            rst -= value * value
            if use_l2:
                rs2 = math.sqrt(max(rst, 0.0))
        return bounds

    def _candidate_verification(self, vector: SparseVector,
                                candidates) -> list[SimilarPair]:
        started = time.perf_counter()
        pairs = super()._candidate_verification(vector, candidates)
        self.stage_seconds["verify"] += time.perf_counter() - started
        return pairs


class ShardedInvScanMixin(_ShardedMixinBase):
    """Sharded overrides of the STR-INV driver's storage/scan hooks."""

    def _append_postings(self, vector: SparseVector) -> int:
        return self._route_postings(vector, 0, None)

    def _scan_query(self, vector: SparseVector, cutoff: float,
                    accumulator) -> tuple[int, int]:
        plan = self._plan
        requests: list[list[tuple]] = [[] for _ in range(plan.workers)]
        for position, (dim, value) in enumerate(vector):
            requests[plan.shard_of(dim)].append((position, dim, value))
        params = {"kind": "inv", "cutoff": cutoff}
        stage = self.stage_seconds
        started = time.perf_counter()
        with obs.span("shard_exchange"):
            replies = self._executor.exchange(requests, params)
        stage["exchange"] += time.perf_counter() - started
        partials = [partial for reply in replies for partial in reply[0]]
        traversed = sum(reply[1] for reply in replies)
        removed = sum(reply[2] for reply in replies)
        if not partials:
            return traversed, removed
        started = time.perf_counter()
        partials.sort(key=lambda partial: partial.position)  # query order
        self.kernel.apply_inv_partials(partials, accumulator)
        stage["replay"] += time.perf_counter() - started
        return traversed, removed


class ShardedL2APStreamingIndex(ShardedPrefixScanMixin, L2APStreamingIndex):
    """STR-L2AP with dimension-sharded posting state."""


class ShardedL2StreamingIndex(ShardedPrefixScanMixin, L2StreamingIndex):
    """STR-L2 with dimension-sharded posting state."""


class ShardedAPStreamingIndex(ShardedPrefixScanMixin, APStreamingIndex):
    """Streaming AP with dimension-sharded posting state (ablations)."""


class ShardedInvStreamingIndex(ShardedInvScanMixin, InvertedStreamingIndex):
    """STR-INV with dimension-sharded posting state."""


_SHARDED_INDEXES = {
    "L2AP": ShardedL2APStreamingIndex,
    "L2": ShardedL2StreamingIndex,
    "AP": ShardedAPStreamingIndex,
    "INV": ShardedInvStreamingIndex,
}


class ShardedStreamingJoin(JoinFramework):
    """The STR framework over a dimension-sharded streaming index.

    Drop-in for :class:`repro.core.join.StreamingSimilarityJoin` plus the
    sharding knobs; close (or use as a context manager) to shut the
    worker processes down.

    Parameters
    ----------
    workers:
        Number of shards.  ``1`` is the degenerate single-shard
        configuration (useful as the parity anchor).
    executor:
        ``"process"`` (one child process per shard, shared-memory arenas)
        or ``"serial"`` (all shards in-process — deterministic, CI-safe,
        no parallelism).
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` (or spec string, or an
        already-built :class:`~repro.faults.FaultInjector`) injecting
        real worker faults — see :mod:`repro.faults`.
    recv_timeout / max_respawns / recovery:
        Crash-tolerance knobs of the process executor: the per-reply
        deadline, the respawn budget before degrading to in-process
        execution, and whether the replay history is kept at all.
    """

    name = "STR"

    def __init__(self, threshold: float, decay: float, *,
                 index: str = "L2AP", workers: int = 2,
                 executor: str = "process",
                 stats: JoinStatistics | None = None,
                 backend: str | None = None,
                 use_shared_memory: bool = True,
                 start_method: str | None = None,
                 fault_plan=None,
                 recv_timeout: float = 10.0,
                 max_respawns: int = 3,
                 recovery: bool = True) -> None:
        # The coordinator's replay runs on the NumPy kernel's slot arrays,
        # so "auto" (and the SSSJ_BACKEND default) resolve to numpy here
        # regardless of the single-process default; an explicit
        # incompatible backend still fails loudly in attach_executor.
        if backend is None or (isinstance(backend, str)
                               and backend.lower() == "auto"):
            backend = "numpy"
        super().__init__(threshold, decay, index=index, stats=stats,
                         backend=backend)
        try:
            index_cls = _SHARDED_INDEXES[self.index_name]
        except KeyError:
            raise UnknownAlgorithmError(
                f"no sharded variant of streaming index {index!r}; "
                f"available: {sorted(_SHARDED_INDEXES)}") from None
        self._index = index_cls(threshold, decay, stats=self.stats,
                                backend=backend)
        # Validate the coordinator kernel and the plan BEFORE spawning
        # anything: a failed construction must not leak worker processes
        # or their shared-memory segments.
        self._index.check_coordinator_kernel()
        plan = ShardPlan(workers)
        faults = _coerce_injector(fault_plan)
        self.fault_injector = faults
        self._executor = create_executor(
            plan, executor, backend="numpy",
            use_shared_memory=use_shared_memory, start_method=start_method,
            recv_timeout=recv_timeout, max_respawns=max_respawns,
            recovery=recovery, faults=faults)
        try:
            self._index.attach_executor(plan, self._executor)
        except BaseException:  # pragma: no cover - defensive
            self._executor.close()
            raise
        self.plan = plan
        self._closed = False
        self._obs_tracker = obs.DeltaTracker()
        if obs.enabled():
            obs.get_registry().add_collector(_collect_shard_join, owner=self)

    # -- introspection ---------------------------------------------------------

    @property
    def index(self):
        """The underlying sharded streaming index."""
        return self._index

    @property
    def backend_name(self) -> str:
        return self._index.backend_name

    @property
    def workers(self) -> int:
        return self.plan.workers

    @property
    def stage_seconds(self) -> dict[str, float]:
        """Coordinator-side wall-clock per stage (exchange/replay/verify)."""
        return self._index.stage_seconds

    def shard_counters(self) -> list[ShardCounters]:
        """Per-shard traffic/balance counters (see ShardCounters)."""
        return self._index.shard_counters()

    @property
    def degraded(self) -> bool:
        """Has the executor fallen back to in-process execution?"""
        return bool(getattr(self._executor, "degraded", False))

    @property
    def recovery_events(self) -> list[dict]:
        """Respawn/degrade events recorded by the executor (chronological)."""
        return list(getattr(self._executor, "recovery_events", ()))

    # -- driving ---------------------------------------------------------------

    def process(self, vector: SparseVector) -> list[SimilarPair]:
        return self._index.process(vector)

    def flush(self) -> list[SimilarPair]:
        self._executor.flush()
        return []

    def close(self) -> None:
        """Shut the shard workers down (idempotent)."""
        if not self._closed:
            self._closed = True
            self._executor.close()

    def __enter__(self) -> "ShardedStreamingJoin":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()


def _coerce_injector(fault_plan):
    """Accept a spec string, a FaultPlan, an injector, or ``None``."""
    if fault_plan is None:
        return None
    from repro.faults import FaultInjector, parse_fault_plan

    if isinstance(fault_plan, FaultInjector):
        return fault_plan
    return FaultInjector(parse_fault_plan(fault_plan))


def create_sharded_join(algorithm: str, threshold: float, decay: float, *,
                        workers: int, stats: JoinStatistics | None = None,
                        backend: str | None = None,
                        executor: str = "process",
                        use_shared_memory: bool = True,
                        start_method: str | None = None,
                        fault_plan=None,
                        recv_timeout: float = 10.0,
                        max_respawns: int = 3,
                        recovery: bool = True) -> ShardedStreamingJoin:
    """Build a sharded streaming join from an ``"STR-<INDEX>"`` string.

    The sharded engine parallelises the STR framework only (MB rebuilds
    batch indexes per window; sharding those is future work).
    """
    from repro.core.join import parse_algorithm

    framework, index = parse_algorithm(algorithm)
    if framework != "STR":
        raise UnknownAlgorithmError(
            f"the sharded engine supports the STR framework only, "
            f"got {algorithm!r}")
    return ShardedStreamingJoin(threshold, decay, index=index, workers=workers,
                                executor=executor, stats=stats, backend=backend,
                                use_shared_memory=use_shared_memory,
                                start_method=start_method,
                                fault_plan=fault_plan,
                                recv_timeout=recv_timeout,
                                max_respawns=max_respawns, recovery=recovery)
