"""Sharded parallel join engine: multiprocess dimension-sharded SSSJ.

The streaming similarity self-join partitions along the dimension axis —
each arriving vector probes only the posting lists of its own non-zero
dimensions — so the engine splits the posting state over N shard workers
(:class:`ShardPlan`), keeps the globally sequential decisions (admission,
pruning, verification, counters) in a coordinator, and exchanges
slot-space partial accumulations between the two
(:class:`~repro.backends.base.SegmentPartial`).

Entry points:

* :func:`create_sharded_join` / :class:`ShardedStreamingJoin` — the STR
  framework over a sharded index (``workers`` and ``executor`` knobs);
* :class:`ShardPlan` / :func:`plan_report` — the dimension partition and
  its posting-mass balance report (``sssj shards``);
* :class:`SerialShardExecutor` / :class:`ProcessShardExecutor` — the
  in-process (CI-safe, deterministic) and multiprocess (parallel,
  shared-memory arenas) execution backends.

Sharded runs are bitwise identical to single-process NumPy runs — same
pairs, similarities and operation counters — at every worker count; see
:mod:`repro.shard.coordinator` for the determinism contract.
"""

from repro.shard.coordinator import (
    ShardedInvStreamingIndex,
    ShardedL2APStreamingIndex,
    ShardedL2StreamingIndex,
    ShardedStreamingJoin,
    create_sharded_join,
)
from repro.shard.executor import (
    ProcessShardExecutor,
    SerialShardExecutor,
    create_executor,
)
from repro.shard.plan import ShardBalance, ShardPlan, plan_report
from repro.shard.worker import ShardWorker, shard_worker_main

__all__ = [
    "ShardPlan",
    "ShardBalance",
    "plan_report",
    "ShardWorker",
    "shard_worker_main",
    "SerialShardExecutor",
    "ProcessShardExecutor",
    "create_executor",
    "ShardedStreamingJoin",
    "ShardedL2APStreamingIndex",
    "ShardedL2StreamingIndex",
    "ShardedInvStreamingIndex",
    "create_sharded_join",
]
