"""Shared-memory arena allocation for the worker processes.

Each sharded worker owns a :class:`~repro.backends.arena.PostingArena`;
in multiprocess mode the arena's backing buffers are allocated from
``multiprocessing.shared_memory`` segments through a
:class:`SharedMemoryAllocator` instead of private heap arrays.  The
allocator plugs into the arena's ``allocator`` hook, so *every* buffer the
arena ever uses — initial arrays, growth reallocations, compaction
targets — lives in a named shared segment.

Lifetime management mirrors the arena's own: the arena never frees
buffers, it just drops references on growth/compaction, and scans may
still hold views into the old buffers at that point.  The allocator
therefore ties each segment's *retirement* to the garbage collection of
the array it handed out (``weakref.finalize``): the segment is unlinked
immediately (the name disappears), while the unmap is deferred to a sweep
on a later allocation — ``weakref.finalize`` callbacks run before the
dying array releases its buffer export, so an eager ``close()`` would
always find live exported pointers.  :meth:`SharedMemoryAllocator.close`
sweeps one final time at worker shutdown; anything still exported then is
detached so the mapping is reclaimed by the kernel when the last view
dies (at the latest, at process exit) without ``SharedMemory.__del__``
noise.
"""

from __future__ import annotations

import weakref
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedMemoryAllocator"]


def _unlink(segment: shared_memory.SharedMemory) -> None:
    try:
        segment.unlink()
    except (FileNotFoundError, OSError):  # already unlinked
        pass


def _detach(segment: shared_memory.SharedMemory) -> None:
    """Drop the segment's handles without unmapping.

    Used only for segments whose buffers are still exported (a numpy view
    is alive) when the allocator shuts down: the mmap object then dies —
    and unmaps — together with the last view, and the defunct
    ``SharedMemory`` wrapper no longer retries (and fails) the close in
    its ``__del__``.
    """
    try:
        segment._buf = None      # type: ignore[attr-defined]
        segment._mmap = None     # type: ignore[attr-defined]
    except AttributeError:  # pragma: no cover - CPython implementation detail
        pass


class SharedMemoryAllocator:
    """``(length, dtype) -> np.ndarray`` factory over shared-memory segments.

    Implements the :class:`repro.backends.arena.ArenaAllocator` interface.
    One segment per allocation; a segment is unlinked as soon as its array
    is garbage collected and unmapped on the next sweep.
    """

    def __init__(self, name_prefix: str = "sssj-arena") -> None:
        self.name_prefix = name_prefix
        #: Total bytes ever allocated (observability; reported per shard).
        self.bytes_allocated = 0
        #: Segments whose arrays are still alive, keyed by segment name.
        self._live: dict[str, shared_memory.SharedMemory] = {}
        self._finalizers: dict[str, weakref.finalize] = {}
        #: Unlinked segments awaiting their deferred unmap.
        self._retired: list[shared_memory.SharedMemory] = []
        self._closed = False

    @property
    def live_segments(self) -> int:
        return len(self._live)

    def __call__(self, length: int, dtype) -> np.ndarray:
        if self._closed:
            raise RuntimeError("allocator is closed")
        self._sweep()
        nbytes = max(1, int(length) * np.dtype(dtype).itemsize)
        segment = shared_memory.SharedMemory(create=True, size=nbytes)
        array = np.frombuffer(segment.buf, dtype=dtype, count=length)
        self.bytes_allocated += nbytes
        name = segment.name
        self._live[name] = segment

        def retire(allocator=weakref.ref(self), segment=segment, name=name):
            _unlink(segment)
            owner = allocator()
            if owner is not None:
                owner._live.pop(name, None)
                owner._finalizers.pop(name, None)
                owner._retired.append(segment)

        self._finalizers[name] = weakref.finalize(array, retire)
        return array

    def _sweep(self, force: bool = False) -> None:
        still_exported: list[shared_memory.SharedMemory] = []
        for segment in self._retired:
            try:
                segment.close()
            except BufferError:
                if force:
                    _detach(segment)
                else:
                    still_exported.append(segment)
        self._retired = still_exported

    def close(self) -> None:
        """Unlink and release every segment (worker shutdown; idempotent)."""
        self._closed = True
        for finalizer in list(self._finalizers.values()):
            finalizer()  # unlink + retire anything still live
        self._live.clear()
        self._finalizers.clear()
        self._sweep(force=True)
