"""Dimension-sharding plan for the parallel join engine.

The streaming similarity self-join partitions naturally along the
*dimension* axis: an arriving vector probes only the posting lists of its
own non-zero dimensions, and a posting list is read and written through a
single dimension key.  A :class:`ShardPlan` therefore hash-partitions the
dimension space over ``workers`` shards; each shard owns the posting lists
(and the shard-local posting arena behind them) of its dimensions, and the
coordinator routes every query term and every indexed coordinate to the
owning shard.

The partition must be

* **deterministic** — the coordinator and every worker process (possibly
  spawned, so with a fresh interpreter) must agree on the owner of every
  dimension, which rules out salted ``hash()``; and
* **balanced** — hashtag-style vocabularies are heavily skewed, so
  consecutive dimension ids must not land on the same shard.  The plan
  mixes the dimension id through a SplitMix64-style finalizer (an
  invertible avalanche function; every input bit affects every output bit)
  before taking it modulo the shard count.

Whole dimensions are assigned to one shard — a posting list is never
split — so the skew of the *posting mass* (not of the dimension count) is
what matters for load balance.  :func:`plan_report` measures exactly that
over a concrete dataset; the ``sssj shards`` CLI prints it so operators
can sanity-check a partitioning before a run.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.results import ShardCounters
from repro.core.vector import SparseVector

__all__ = ["ShardPlan", "ShardBalance", "plan_report"]

_MASK64 = (1 << 64) - 1


def _mix(value: int) -> int:
    """SplitMix64 finalizer: deterministic avalanche mixing of a dim id."""
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK64
    return value ^ (value >> 31)


@dataclass(frozen=True)
class ShardPlan:
    """Hash partition of the dimension space over ``workers`` shards."""

    workers: int

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"need at least one shard, got {self.workers}")

    def shard_of(self, dim: int) -> int:
        """Owning shard of ``dim`` (stable across processes and runs)."""
        if self.workers == 1:
            return 0
        return _mix(dim & _MASK64) % self.workers

    def split_positions(self, vector: SparseVector, start: int = 0,
                        end: int | None = None) -> list[list[int]]:
        """Group the coordinate positions ``[start, end)`` by owning shard."""
        groups: list[list[int]] = [[] for _ in range(self.workers)]
        dims = vector.dims
        stop = len(dims) if end is None else end
        for position in range(start, stop):
            groups[self.shard_of(dims[position])].append(position)
        return groups


@dataclass
class ShardBalance:
    """Posting-mass balance of a :class:`ShardPlan` over a dataset."""

    plan: ShardPlan
    shards: list[ShardCounters]
    total_dimensions: int
    total_postings: int

    @property
    def max_share(self) -> float:
        """Largest shard's share of the posting mass (1/workers is perfect)."""
        if not self.total_postings:
            return 0.0
        return max(shard.entries_indexed
                   for shard in self.shards) / self.total_postings

    @property
    def skew(self) -> float:
        """``max / mean`` posting mass across shards (1.0 is perfectly even)."""
        masses = [shard.entries_indexed for shard in self.shards]
        mean = sum(masses) / len(masses)
        if mean == 0:
            return 1.0
        return max(masses) / mean

    def rows(self) -> list[dict[str, object]]:
        """Table rows for the ``sssj shards`` report."""
        rows: list[dict[str, object]] = []
        for shard in self.shards:
            share = (shard.entries_indexed / self.total_postings
                     if self.total_postings else 0.0)
            rows.append({
                "shard": shard.shard,
                "dimensions": shard.dimensions,
                "postings": shard.entries_indexed,
                "share": f"{share:.1%}",
            })
        return rows


def plan_report(vectors: Iterable[SparseVector], workers: int) -> ShardBalance:
    """Measure how ``ShardPlan(workers)`` would balance ``vectors``.

    Counts every non-zero coordinate as one posting (the INV upper bound on
    the indexed mass; the prefix schemes index a subset, but skew is driven
    by the same vocabulary shape) and attributes it to the owning shard.
    """
    plan = ShardPlan(workers)
    postings = [0] * workers
    dimension_owner: dict[int, int] = {}
    for vector in vectors:
        for dim in vector.dims:
            owner = dimension_owner.get(dim)
            if owner is None:
                owner = plan.shard_of(dim)
                dimension_owner[dim] = owner
            postings[owner] += 1
    dimension_counts = [0] * workers
    for owner in dimension_owner.values():
        dimension_counts[owner] += 1
    shards = [ShardCounters(shard=shard, dimensions=dimension_counts[shard],
                            entries_indexed=postings[shard])
              for shard in range(workers)]
    return ShardBalance(plan=plan, shards=shards,
                        total_dimensions=len(dimension_owner),
                        total_postings=sum(postings))
