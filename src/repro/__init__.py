"""Streaming Similarity Self-Join (SSSJ).

A complete reproduction of *"Streaming Similarity Self-Join"* (De Francisci
Morales & Gionis, VLDB 2016): the time-dependent similarity model, the
MiniBatch (MB) and Streaming (STR) frameworks, the INV / AP / L2AP / L2
indexing schemes, exact baselines, synthetic dataset generators shaped like
the paper's corpora, and a benchmark harness that regenerates every table
and figure of the evaluation.

The filtering hot loops run on a pluggable compute backend
(:mod:`repro.backends`): a pure-Python reference implementation or
NumPy-vectorised array kernels, selected per join via ``backend=`` /
``--backend`` / ``SSSJ_BACKEND`` and auto-detected by default.  Both
produce identical output, pair for pair.

Quickstart
----------
>>> from repro import SparseVector, StreamingSimilarityJoin
>>> join = StreamingSimilarityJoin(threshold=0.7, decay=0.1)
>>> stream = [
...     SparseVector(0, 0.0, {1: 1.0, 2: 1.0}),
...     SparseVector(1, 1.0, {1: 1.0, 2: 1.0}),
... ]
>>> [pair.key for pair in join.run(stream)]
[(0, 1)]
"""

from repro.applications import (
    DuplicateFilter,
    FilterDecision,
    TopKPairsMonitor,
    Trend,
    TrendDetector,
)
from repro.backends import (
    available_backends,
    default_backend,
    get_backend,
)
from repro.baselines import (
    SlidingWindowJoin,
    brute_force_all_pairs,
    brute_force_time_dependent,
    sliding_window_join,
)
from repro.core import (
    CallbackCollector,
    CheckpointError,
    CountingCollector,
    FileStream,
    load_checkpoint,
    restore_join,
    save_checkpoint,
    snapshot_join,
    GeneratorStream,
    JoinFramework,
    JoinParameters,
    JoinStatistics,
    ListCollector,
    ListStream,
    MiniBatchFramework,
    MiniBatchSimilarityJoin,
    SimilarPair,
    SparseVector,
    StreamingFramework,
    StreamingSimilarityJoin,
    TopKCollector,
    VectorStream,
    all_pairs,
    cosine_similarity,
    create_join,
    decay_factor,
    decay_for_horizon,
    dot_product,
    merge_streams,
    normalize_entries,
    parse_algorithm,
    streaming_self_join,
    time_dependent_similarity,
    time_horizon,
)
from repro.datasets import (
    DatasetProfile,
    SyntheticCorpusGenerator,
    TextVectorizer,
    Tokenizer,
    available_profiles,
    dataset_statistics,
    generate_corpus,
    generate_profile_corpus,
    get_profile,
)
from repro.exceptions import (
    BudgetExceededError,
    DatasetFormatError,
    InvalidParameterError,
    InvalidVectorError,
    SSSJError,
    ShardWorkerError,
    StreamOrderError,
    UnknownAlgorithmError,
    UnknownBackendError,
)
from repro.faults import FaultEvent, FaultInjector, FaultPlan, parse_fault_plan
from repro.indexes import (
    DimensionOrdering,
    available_batch_indexes,
    available_streaming_indexes,
    create_batch_index,
    create_streaming_index,
)
from repro.service import (
    JoinService,
    JoinSession,
    ServiceClient,
    SessionConfig,
)
from repro.shard import (
    ShardPlan,
    ShardedStreamingJoin,
    create_sharded_join,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core model
    "SparseVector",
    "dot_product",
    "normalize_entries",
    "JoinParameters",
    "cosine_similarity",
    "decay_factor",
    "decay_for_horizon",
    "time_dependent_similarity",
    "time_horizon",
    # streams
    "VectorStream",
    "ListStream",
    "GeneratorStream",
    "FileStream",
    "merge_streams",
    # results
    "SimilarPair",
    "JoinStatistics",
    "ListCollector",
    "CountingCollector",
    "CallbackCollector",
    "TopKCollector",
    # compute backends
    "available_backends",
    "default_backend",
    "get_backend",
    # joins
    "JoinFramework",
    "StreamingFramework",
    "MiniBatchFramework",
    "StreamingSimilarityJoin",
    "MiniBatchSimilarityJoin",
    "create_join",
    "parse_algorithm",
    "streaming_self_join",
    "all_pairs",
    # sharded parallel engine
    "ShardPlan",
    "ShardedStreamingJoin",
    "create_sharded_join",
    # fault injection (chaos testing)
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "parse_fault_plan",
    # streaming join service
    "JoinSession",
    "SessionConfig",
    "JoinService",
    "ServiceClient",
    # checkpointing
    "CheckpointError",
    "snapshot_join",
    "restore_join",
    "save_checkpoint",
    "load_checkpoint",
    # baselines
    "brute_force_all_pairs",
    "brute_force_time_dependent",
    "SlidingWindowJoin",
    "sliding_window_join",
    # applications
    "TrendDetector",
    "Trend",
    "DuplicateFilter",
    "FilterDecision",
    "TopKPairsMonitor",
    # indexes
    "available_batch_indexes",
    "available_streaming_indexes",
    "create_batch_index",
    "create_streaming_index",
    "DimensionOrdering",
    # datasets
    "DatasetProfile",
    "SyntheticCorpusGenerator",
    "Tokenizer",
    "TextVectorizer",
    "generate_corpus",
    "generate_profile_corpus",
    "get_profile",
    "available_profiles",
    "dataset_statistics",
    # exceptions
    "SSSJError",
    "InvalidVectorError",
    "InvalidParameterError",
    "StreamOrderError",
    "UnknownAlgorithmError",
    "UnknownBackendError",
    "DatasetFormatError",
    "BudgetExceededError",
    "ShardWorkerError",
]
