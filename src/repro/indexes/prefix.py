"""Shared prefix-filtering engine behind the AP, L2AP and L2 indexes.

The three schemes of Sections 5.2–5.4 differ only in which bound families
they enable:

===========  =====================  =====================
scheme       AP bounds (``b1``,     ℓ₂ bounds (``b2``,
             ``sz1``, ``rs1``)      ``rs2``, ``l2bound``)
===========  =====================  =====================
AP           yes                    no
L2AP         yes                    yes
L2           no                     yes
===========  =====================  =====================

:class:`PrefixFilterBatchIndex` implements Algorithms 2–4 (index
construction, candidate generation, candidate verification) for a static
dataset, parameterised by the two flags.  :class:`PrefixFilterStreamingIndex`
implements the streaming counterparts (Algorithms 6–8) including time
filtering, decayed bounds and — when the AP bounds are enabled — the
re-indexing procedure of Section 5.3.

The per-posting inner loops (accumulation, time filtering, the ``l2bound``
and ``sz1`` checks) are delegated to the configured compute backend's
:class:`~repro.backends.base.SimilarityKernel`; this module keeps the
algorithmic driver — bound maintenance across query positions, the
residual/``Q`` store, re-indexing — which is identical for every backend.

The concrete classes in :mod:`repro.indexes.allpairs`, :mod:`repro.indexes.l2ap`
and :mod:`repro.indexes.l2` are thin subclasses that fix the flags.
"""

from __future__ import annotations

import math

from repro import obs
from repro.backends import CandidateSet, SimilarityKernel
from repro.core.results import JoinStatistics, SimilarPair
from repro.core.similarity import time_horizon
from repro.core.vector import SparseVector
from repro.exceptions import InvalidParameterError
from repro.indexes.base import BatchIndex, StreamingIndex
from repro.indexes.bounds import size_filter_threshold
from repro.indexes.maxvector import DecayedMaxVector, MaxVector
from repro.indexes.posting import InvertedIndex
from repro.indexes.residual import ResidualEntry, ResidualIndex

__all__ = ["PrefixFilterBatchIndex", "PrefixFilterStreamingIndex",
           "collect_index_stats"]

_INF = math.inf


def collect_index_stats(index) -> None:
    """Scrape-time collector: a streaming index's structural counters.

    Counter export only — the per-posting scan paths are untouched (the
    registry never appears on the hot path).  Shared with the INV index;
    the labels identify the scheme and backend, not the instance, so
    multiple engines of the same configuration feed one series (each via
    its own delta tracker).
    """
    registry = obs.get_registry()
    tracker = index._obs_tracker
    stats = index.stats
    labels = {"index": index.name, "backend": index.backend_name}
    for key, value in (
            ("entries_indexed", stats.entries_indexed),
            ("entries_traversed", stats.entries_traversed),
            ("entries_pruned", stats.entries_pruned),
            ("reindexings", stats.reindexings),
            ("reindexed_entries", stats.reindexed_entries)):
        tracker.export(registry.counter(
            f"sssj_index_{key}_total",
            f"Streaming-index {key.replace('_', ' ')}.",
            ("index", "backend")).labels(**labels), key, value)


class PrefixFilterBatchIndex(BatchIndex):
    """Batch prefix-filtering index (Algorithms 2–4) with selectable bounds.

    Parameters
    ----------
    threshold:
        Similarity threshold ``θ``.
    max_vector:
        The ``m`` vector over the data that will *query* the index.  Required
        when the AP bounds are enabled (``use_ap``); the batch driver computes
        it over the whole dataset, the MiniBatch framework over the previous
        and the current window (Section 6.1).  When omitted with ``use_ap``
        enabled, the index maintains ``m`` online from the vectors it sees,
        which is only correct if queries never exceed the indexed maxima.
    backend:
        Compute backend for the hot loops (see :mod:`repro.backends`).
    """

    use_ap: bool = True
    use_l2: bool = True

    def __init__(self, threshold: float, *, stats: JoinStatistics | None = None,
                 max_vector: MaxVector | None = None,
                 backend: str | SimilarityKernel | None = None,
                 approx=None) -> None:
        super().__init__(threshold, stats=stats, backend=backend,
                         approx=approx)
        self._index = InvertedIndex(self.kernel.new_posting_list)
        self._residual = ResidualIndex()
        self._size_filter = self.kernel.new_size_filter()
        self._max_query = max_vector            # m  (bounds future queries)
        self._max_indexed = MaxVector()         # m̂  (maxima of indexed data)

    # -- introspection ----------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._index)

    @property
    def residual_size(self) -> int:
        return self._residual.total_residual_coordinates()

    # -- IC ---------------------------------------------------------------------

    def index_vector(self, vector: SparseVector) -> None:
        max_vector = self._max_query
        if self.use_ap and max_vector is None:
            # Fall back to the indexed maxima; see the class docstring.
            max_vector = self._max_indexed
            max_vector.update(vector)
        split = self.kernel.indexing_split(
            vector, self.threshold,
            max_vector=max_vector if self.use_ap else None,
            use_ap=self.use_ap, use_l2=self.use_l2,
        )
        if split.boundary >= len(vector):
            # The whole vector stays un-indexed: it cannot reach the threshold
            # against any other vector, so it will never need to be retrieved.
            return
        entry = ResidualEntry(
            vector=vector, boundary=split.boundary, pscore=split.pscore,
        )
        self._residual.add(entry)
        self._size_filter.set(vector.vector_id, len(vector) * vector.max_value)
        self.kernel.note_vector_indexed(entry)
        indexed = self.kernel.index_vector_postings(
            self._index, vector, split.boundary)
        self._max_indexed.update(vector)
        self.stats.entries_indexed += indexed
        self.stats.residual_entries += split.boundary
        self.stats.max_index_size = max(self.stats.max_index_size, len(self._index))
        self.stats.max_residual_size = max(
            self.stats.max_residual_size, self._residual.total_residual_coordinates()
        )

    # -- CG ---------------------------------------------------------------------

    def candidate_generation(self, vector: SparseVector) -> CandidateSet:
        stats = self.stats
        threshold = self.threshold
        kernel = self.kernel
        accumulator = kernel.new_accumulator()

        sz1 = size_filter_threshold(threshold, vector.max_value) if self.use_ap else 0.0
        if self.use_ap:
            # One m̂ gather per query: the rs1 seed matches MaxVector.dot
            # add for add and the kernel's per-position decrements reuse
            # the same values the per-term loop would fetch.
            max_get = self._max_indexed.get
            maxima = [max_get(dim) for dim in vector.dims]
            rs1 = self._max_indexed.dot(vector)
        else:
            maxima = None
            rs1 = _INF

        # The whole query's scan — bound maintenance across positions
        # included — is one kernel call (Algorithm 3's outer loop); see
        # SimilarityKernel.scan_query_batch.
        stats.entries_traversed += kernel.scan_query_batch(
            vector, self._index, threshold=threshold, rs1=rs1, maxima=maxima,
            sz1=sz1, use_ap=self.use_ap, use_l2=self.use_l2,
            size_filter=self._size_filter, acc=accumulator,
        )

        candidates = accumulator.finalize()
        stats.candidates_generated += len(candidates)
        stats.candidates_sketch_pruned += getattr(accumulator,
                                                  "sketch_pruned", 0)
        return candidates

    # -- CV ---------------------------------------------------------------------

    def candidate_verification(
        self, vector: SparseVector, candidates: CandidateSet
    ) -> list[tuple[SparseVector, float]]:
        return self.kernel.verify_batch(
            vector, candidates, self._residual, self.threshold, self.stats)


class PrefixFilterStreamingIndex(StreamingIndex):
    """Streaming prefix-filtering index (Algorithms 6–8) with selectable bounds.

    When the AP bounds are enabled the index maintains the online maximum
    vector ``m`` and performs the re-indexing procedure of Section 5.3
    whenever ``m`` grows; its posting lists then lose time order and are
    pruned by full compaction.  When only the ℓ₂ bounds are enabled (the L2
    scheme) the lists stay time ordered, so candidate generation scans them
    backwards and truncates lazily, exactly as Section 6.2 describes.
    """

    use_ap: bool = True
    use_l2: bool = True

    def __init__(self, threshold: float, decay: float, *,
                 stats: JoinStatistics | None = None,
                 backend: str | SimilarityKernel | None = None,
                 approx=None) -> None:
        super().__init__(threshold, decay, stats=stats, backend=backend,
                         approx=approx)
        if decay <= 0:
            raise InvalidParameterError(
                "the streaming indexes require a strictly positive decay rate; "
                "with decay == 0 the horizon is unbounded and the index can never "
                "forget items (use the batch all_pairs driver instead)"
            )
        self.horizon = time_horizon(threshold, decay)
        self.time_ordered = not self.use_ap
        self._index = self._make_index()
        self._obs_tracker = obs.DeltaTracker()
        if obs.enabled():
            obs.get_registry().add_collector(collect_index_stats, owner=self)
        self._residual = ResidualIndex()
        self._size_filter = self.kernel.new_size_filter()
        self._max_query = MaxVector() if self.use_ap else None          # m
        self._max_decayed = DecayedMaxVector(decay) if self.use_ap else None  # m̂^λ

    # -- storage / scan hooks ----------------------------------------------------
    #
    # Subclasses that farm the posting-list state out to other owners — the
    # sharded coordinator of :mod:`repro.shard` keeps its postings in
    # per-worker shards — override these three hooks; everything else (time
    # filtering of the residual store, bound maintenance, re-indexing,
    # verification) runs unchanged on top of them.

    def _make_index(self) -> InvertedIndex:
        """The posting store; anything with the ``InvertedIndex`` counting
        interface (``__len__`` / ``note_added`` / ``note_removed``)."""
        return InvertedIndex(self.kernel.new_posting_list)

    def _scan_query(self, vector: SparseVector, now: float, cutoff: float,
                    rs1: float, decayed_maxima: list[float] | None,
                    sz1: float, accumulator) -> tuple[int, int]:
        """Candidate-generation scan of the whole query (Algorithm 7).

        Returns ``(entries_traversed, entries_removed)``.
        """
        return self.kernel.scan_query_stream(
            vector, self._index, now=now, cutoff=cutoff, decay=self.decay,
            rs1=rs1, decayed_maxima=decayed_maxima, sz1=sz1,
            threshold=self.threshold, use_ap=self.use_ap, use_l2=self.use_l2,
            time_ordered=self.time_ordered, size_filter=self._size_filter,
            acc=accumulator,
        )

    def _append_postings(self, vector: SparseVector, start: int = 0,
                         end: int | None = None) -> int:
        """Append ``vector``'s coordinates ``[start, end)`` to the posting store."""
        return self.kernel.index_vector_postings(self._index, vector, start, end)

    # -- introspection ----------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._index)

    @property
    def residual_size(self) -> int:
        return self._residual.total_residual_coordinates()

    # -- main entry point (Algorithm 6) ------------------------------------------

    def process(self, vector: SparseVector) -> list[SimilarPair]:
        now = vector.timestamp
        cutoff = now - self.horizon
        stats = self.stats

        # Time filtering of the residual/Q store: entries are in arrival
        # order, so eviction pops from the head (Section 6.2).
        for evicted in self._residual.evict_older_than(cutoff):
            self._size_filter.discard(evicted.vector_id)
            self.kernel.note_vector_evicted(evicted.vector_id)

        # Maintaining the AP invariant must happen before candidate
        # generation: if the new vector raises the maximum of a dimension,
        # residual prefixes that relied on the old maximum may now need to
        # be (partially) indexed, otherwise the query could miss them.
        if self.use_ap:
            grown = self._max_query.update(vector)  # type: ignore[union-attr]
            if grown:
                self._reindex(grown, cutoff)

        scores = self._candidate_generation(vector, cutoff)
        pairs = self._candidate_verification(vector, scores)
        self._index_vector(vector)

        stats.vectors_processed += 1
        stats.pairs_output += len(pairs)
        stats.max_index_size = max(stats.max_index_size, len(self._index))
        stats.max_residual_size = max(
            stats.max_residual_size, self._residual.total_residual_coordinates()
        )
        return pairs

    # -- CG (Algorithm 7) ---------------------------------------------------------

    def _candidate_generation(self, vector: SparseVector, cutoff: float) -> CandidateSet:
        stats = self.stats
        threshold = self.threshold
        decay = self.decay
        now = vector.timestamp
        kernel = self.kernel
        accumulator = kernel.new_accumulator()

        sz1 = size_filter_threshold(threshold, vector.max_value) if self.use_ap else 0.0
        if self.use_ap:
            # One m̂^λ gather per query; the rs1 initialisation below matches
            # DecayedMaxVector.dot add for add, and the kernel's per-position
            # decrements reuse the same values.
            value_at = self._max_decayed.value_at  # type: ignore[union-attr]
            decayed_maxima = [value_at(dim, now) for dim in vector.dims]
            rs1 = sum(value * decayed
                      for value, decayed in zip(vector.values, decayed_maxima))
        else:
            decayed_maxima = None
            rs1 = _INF

        # The whole query's scan — time filtering, decayed bound
        # maintenance across positions — is one kernel call (Algorithm 7's
        # outer loop) behind the _scan_query hook; see
        # SimilarityKernel.scan_query_stream and the sharded override.
        traversed, removed = self._scan_query(
            vector, now, cutoff, rs1, decayed_maxima, sz1, accumulator)
        stats.entries_traversed += traversed
        if removed:
            self._index.note_removed(removed)
            stats.entries_pruned += removed

        candidates = accumulator.finalize()
        stats.candidates_generated += len(candidates)
        stats.candidates_sketch_pruned += getattr(accumulator,
                                                  "sketch_pruned", 0)
        return candidates

    # -- CV (Algorithm 8) ---------------------------------------------------------

    def _candidate_verification(self, vector: SparseVector,
                                candidates: CandidateSet) -> list[SimilarPair]:
        return self.kernel.verify_stream(
            vector, candidates, self._residual, self.threshold, self.decay,
            vector.timestamp, self.stats)

    # -- IC (Algorithm 6, lines 6-14) ----------------------------------------------

    def _index_vector(self, vector: SparseVector) -> None:
        split = self.kernel.indexing_split(
            vector, self.threshold,
            max_vector=self._max_query if self.use_ap else None,
            use_ap=self.use_ap, use_l2=self.use_l2,
        )
        if split.boundary >= len(vector):
            return
        entry = ResidualEntry(
            vector=vector, boundary=split.boundary, pscore=split.pscore,
        )
        self._residual.add(entry)
        self._size_filter.set(vector.vector_id, len(vector) * vector.max_value)
        self.kernel.note_vector_indexed(entry)
        indexed = self._append_postings(vector, split.boundary)
        if self.use_ap:
            self._max_decayed.update(vector)  # type: ignore[union-attr]
        self.stats.entries_indexed += indexed
        self.stats.residual_entries += split.boundary

    # -- re-indexing (Section 5.3) ---------------------------------------------------

    def _reindex(self, grown_dims: list[int], cutoff: float) -> None:
        """Restore the prefix-filtering invariant after ``m`` grew."""
        affected = self._residual.candidates_for_dimensions(grown_dims)
        if not affected:
            return
        self.stats.reindexings += 1
        # Re-indexing is the rare structural event worth a span of its
        # own; the per-posting scan paths carry no instrumentation.
        with obs.span("reindex", affected=len(affected)):
            self._reindex_affected(affected, cutoff)

    def _reindex_affected(self, affected, cutoff: float) -> None:
        stats = self.stats
        threshold = self.threshold
        for candidate_id in affected:
            entry = self._residual.get(candidate_id)
            if entry is None or entry.timestamp < cutoff:
                continue
            boundary = entry.boundary
            if self.use_l2 and entry.vector.prefix_norm_before(boundary) < threshold:
                # ℓ₂-locked boundary: every pre-boundary position has
                # ``b2 < θ``, so ``min(b1, b2) < θ`` there no matter how
                # much ``m`` grows — the boundary cannot move.  The stored
                # Q bound must still stay an upper bound while ``b1``
                # grows; cap it once at the (m-independent) ℓ₂ bound
                # instead of rescanning the prefix on every growth event.
                l2_bound = entry.vector.prefix_norm_before(boundary)
                if entry.pscore != l2_bound:
                    entry.pscore = l2_bound
                    self.kernel.note_vector_updated(entry)
                continue
            split = self.kernel.indexing_split(
                entry.vector, self.threshold,
                max_vector=self._max_query,
                use_ap=self.use_ap, use_l2=self.use_l2,
                limit=entry.boundary,
            )
            if split.boundary >= entry.boundary:
                # The boundary does not move, but the stored Q bound was
                # computed against the old maxima and is now too small; a
                # stale (under-estimating) Q would let the ps1 verification
                # bound prune a true pair.  Refresh it.
                entry.pscore = split.pscore
                self.kernel.note_vector_updated(entry)
                continue
            # Move the newly covered coordinates from the residual prefix to
            # the posting lists; they are appended at the tail, so the lists
            # lose their time order (hence ``time_ordered`` is False here).
            moved = self._append_postings(entry.vector, split.boundary,
                                          entry.boundary)
            stats.reindexed_entries += moved
            stats.entries_indexed += moved
            freed_dims = entry.shrink_to(split.boundary, split.pscore)
            self._residual.note_residual_shrunk(len(freed_dims))
            self._residual.forget_residual_dimension(candidate_id, freed_dims)
            self.kernel.note_vector_updated(entry)
