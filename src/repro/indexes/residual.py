"""Residual direct index ``R``, the ``Q`` array and per-vector metadata.

The prefix-filtering schemes (AP, L2AP, L2) do not index every coordinate:
for each vector ``x`` the coordinates scanned before the indexing boundary
form the *residual prefix* ``x'`` which is kept in a direct index ``R`` so
that candidate verification can finish the dot product exactly.  Alongside
the residual, the schemes keep the ``Q[ι(x)] = pscore`` bound and the
per-vector statistics (``vm_x'``, ``Σx'``, ``|x'|``) that feed the ``ds1``
and ``sz2`` verification bounds, plus ``|x|·vm_x`` for the ``sz1`` size
filter applied while scanning posting lists.

Both structures are stored in a :class:`~repro.indexes.linked_map.LinkedHashMap`
keyed by vector id so that, in the streaming setting, entries can be pruned
in arrival order once they fall behind the time horizon (Section 6.2).
A per-dimension reverse map over the residual coordinates supports the
re-indexing step of STR-L2AP without scanning every stored vector.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.core.vector import SparseVector
from repro.indexes.linked_map import LinkedHashMap

__all__ = ["ResidualEntry", "ResidualIndex"]


@dataclass(slots=True)
class ResidualEntry:
    """Residual prefix and metadata for one indexed vector."""

    vector: SparseVector
    boundary: int
    pscore: float
    residual: dict[int, float] = field(default_factory=dict)
    #: Backend-owned cache of the residual coordinates in array form
    #: (built lazily by the vectorised kernels, invalidated on mutation).
    array_cache: object = field(default=None, repr=False, compare=False)
    #: Lazily computed ``(vm_{x'}, Σx')`` pair; candidate verification reads
    #: these once per candidate, so they must not be recomputed from the
    #: dictionary every time.  Mutate ``residual`` only through
    #: :meth:`shrink_to` / :meth:`set_residual`, which invalidate the cache.
    _stats_cache: tuple[float, float] | None = field(
        default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.residual and self.boundary > 0:
            self.residual = self.vector.prefix(self.boundary)

    # -- statistics used by the verification bounds ---------------------------

    @property
    def vector_id(self) -> int:
        return self.vector.vector_id

    @property
    def timestamp(self) -> float:
        return self.vector.timestamp

    def _stats(self) -> tuple[float, float]:
        cached = self._stats_cache
        if cached is None:
            cached = (max(self.residual.values(), default=0.0),
                      sum(self.residual.values()))
            self._stats_cache = cached
        return cached

    @property
    def residual_max(self) -> float:
        """``vm_{x'}`` — the largest residual coordinate (0 when empty)."""
        return self._stats()[0]

    @property
    def residual_sum(self) -> float:
        """``Σ x'`` — sum of the residual coordinates."""
        return self._stats()[1]

    @property
    def residual_size(self) -> int:
        """``|x'|`` — number of residual coordinates."""
        return len(self.residual)

    def set_residual(self, residual: dict[int, float]) -> None:
        """Replace the residual prefix, refreshing the cached statistics."""
        self.residual = residual
        self._stats_cache = None
        self.array_cache = None

    @property
    def size_filter_value(self) -> float:
        """``|x| · vm_x`` over the *full* vector, used by the sz1 size filter."""
        return len(self.vector) * self.vector.max_value

    def residual_dot(self, query: SparseVector) -> float:
        """Dot product of the query with the residual prefix ``dot(x, y')``."""
        if not self.residual:
            return 0.0
        return query.dot(self.residual)

    def shrink_to(self, new_boundary: int, new_pscore: float) -> list[int]:
        """Move the boundary earlier (re-indexing) and return the freed dimensions.

        The coordinates at positions ``[new_boundary, boundary)`` leave the
        residual — the caller is responsible for appending them to the
        posting lists.
        """
        if new_boundary >= self.boundary:
            return []
        freed = [
            self.vector.dims[position]
            for position in range(new_boundary, self.boundary)
        ]
        for dim in freed:
            self.residual.pop(dim, None)
        self.boundary = new_boundary
        self.pscore = new_pscore
        self.array_cache = None
        self._stats_cache = None
        return freed


class ResidualIndex:
    """The ``R``/``Q`` store with horizon-based eviction and a dimension map."""

    __slots__ = ("_entries", "_by_dimension", "_total_residual")

    def __init__(self) -> None:
        self._entries: LinkedHashMap[int, ResidualEntry] = LinkedHashMap()
        # dim -> set of vector ids whose residual has a non-zero value on dim
        self._by_dimension: dict[int, set[int]] = {}
        # Running total of residual coordinates; the streaming driver reads
        # it after every item, so it must not be recomputed by scanning.
        self._total_residual = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vector_id: int) -> bool:
        return vector_id in self._entries

    def get(self, vector_id: int) -> ResidualEntry | None:
        return self._entries.get(vector_id)

    def entries(self) -> Iterator[ResidualEntry]:
        return iter(self._entries.values())

    def total_residual_coordinates(self) -> int:
        """Total number of coordinates currently held in residual prefixes."""
        return self._total_residual

    def add(self, entry: ResidualEntry) -> None:
        """Register a newly indexed vector (insertion order = arrival order)."""
        self._entries[entry.vector_id] = entry
        self._total_residual += entry.residual_size
        for dim in entry.residual:
            self._by_dimension.setdefault(dim, set()).add(entry.vector_id)

    def candidates_for_dimensions(self, dims: Iterator[int] | list[int]) -> set[int]:
        """Vector ids whose residual intersects any of ``dims`` (re-indexing scan)."""
        result: set[int] = set()
        for dim in dims:
            result.update(self._by_dimension.get(dim, ()))
        return result

    def forget_residual_dimension(self, vector_id: int, dims: list[int]) -> None:
        """Drop reverse-map links after re-indexing moved ``dims`` to the index."""
        for dim in dims:
            bucket = self._by_dimension.get(dim)
            if bucket is not None:
                bucket.discard(vector_id)
                if not bucket:
                    del self._by_dimension[dim]

    def note_residual_shrunk(self, count: int) -> None:
        """Adjust the coordinate total after re-indexing shrank a residual."""
        self._total_residual -= count
        if self._total_residual < 0:  # defensive; should never happen
            self._total_residual = 0

    def evict_older_than(self, cutoff: float) -> list[ResidualEntry]:
        """Remove entries whose vector arrived before ``cutoff`` (time filtering)."""
        evicted = self._entries.evict_while(
            lambda _vector_id, entry: entry.timestamp < cutoff
        )
        removed_entries = [entry for _, entry in evicted]
        for entry in removed_entries:
            self._total_residual -= entry.residual_size
            self.forget_residual_dimension(entry.vector_id, list(entry.residual))
        if self._total_residual < 0:  # defensive; should never happen
            self._total_residual = 0
        return removed_entries

    def clear(self) -> None:
        self._entries.clear()
        self._by_dimension.clear()
        self._total_residual = 0
