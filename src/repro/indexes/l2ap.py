"""L2AP indexing scheme (Anastasiu & Karypis, Section 5.3 of the paper).

L2AP is the batch state of the art for the all-pairs similarity search.
It augments AP with ℓ₂-norm bounds: the ``b2`` index-construction bound,
the ``rs2`` remaining-score bound, the early ``l2bound`` pruning during
candidate generation, and the stored ``pscore`` (``Q`` array) used by the
``ps1`` verification bound.

In the streaming setting (``STR-L2AP``) the maximum vector ``m`` has to be
maintained online; whenever it grows, the prefix-filtering invariant breaks
and the affected residual prefixes must be partially re-indexed
(Section 5.3, "Re-indexing").  Re-indexed postings are appended out of time
order, so the posting lists can no longer be truncated with the backward
scan — they are compacted instead, which is precisely the overhead the
paper measures in Figures 5 and 6.
"""

from __future__ import annotations

from repro.indexes.base import register_batch_index, register_streaming_index
from repro.indexes.prefix import PrefixFilterBatchIndex, PrefixFilterStreamingIndex

__all__ = ["L2APBatchIndex", "L2APStreamingIndex"]


@register_batch_index
class L2APBatchIndex(PrefixFilterBatchIndex):
    """Batch L2AP index: AP + ℓ₂ bounds (Algorithms 2–4, red and green lines)."""

    name = "L2AP"
    use_ap = True
    use_l2 = True


@register_streaming_index
class L2APStreamingIndex(PrefixFilterStreamingIndex):
    """STR-L2AP: streaming L2AP with online ``m`` maintenance and re-indexing."""

    name = "L2AP"
    use_ap = True
    use_l2 = True
