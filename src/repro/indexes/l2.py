"""L2 indexing scheme — the paper's contribution (Section 5.4).

L2 keeps only the ℓ₂-based bounds of L2AP (``b2``, ``rs2``, ``l2bound`` and
the ℓ₂ part of ``pscore``) and discards the AP bounds.  Because the ℓ₂
bounds depend only on the vector being indexed — never on dataset
statistics — the streaming variant:

* does not maintain the maximum vector ``m`` and therefore never needs to
  re-index,
* keeps its posting lists in time order, so candidate generation can scan
  them backwards and truncate expired postings in constant time
  (Section 6.2), and
* has very lightweight index maintenance.

These properties are exactly why the paper concludes that ``STR-L2`` is the
most scalable and robust configuration.
"""

from __future__ import annotations

from repro.indexes.base import register_batch_index, register_streaming_index
from repro.indexes.prefix import PrefixFilterBatchIndex, PrefixFilterStreamingIndex

__all__ = ["L2BatchIndex", "L2StreamingIndex"]


@register_batch_index
class L2BatchIndex(PrefixFilterBatchIndex):
    """Batch L2 index: ℓ₂ bounds only (Algorithms 2–4, green lines)."""

    name = "L2"
    use_ap = False
    use_l2 = True


@register_streaming_index
class L2StreamingIndex(PrefixFilterStreamingIndex):
    """STR-L2: streaming L2 with time-ordered lists and no re-indexing."""

    name = "L2"
    use_ap = False
    use_l2 = True
