"""Filtering bounds shared by the AP, L2AP and L2 indexing schemes.

The paper (Section 5) combines two families of bounds:

* **AP bounds** (Bayardo et al.): ``b1`` during index construction, the
  ``sz1`` size filter and the ``rs1`` remaining-score bound during candidate
  generation, and the ``ds1``/``sz2`` bounds during verification.  These
  depend on dataset statistics (the max vector ``m`` / ``m̂``).
* **ℓ₂ bounds** (Anastasiu & Karypis): ``b2`` during index construction and
  ``rs2``/``l2bound`` during candidate generation.  These depend only on the
  vector being processed, which is why the L2 index needs no re-indexing in
  the streaming setting.

This module holds the pieces that are naturally expressed as standalone
functions: the index-construction split (which coordinates go to the
residual and which are indexed, together with the stored ``pscore``) and
the candidate-verification bounds.  The candidate-generation bounds are
interleaved with the posting-list scan and live in the index classes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.vector import SparseVector
from repro.indexes.maxvector import MaxVector
from repro.indexes.residual import ResidualEntry

__all__ = [
    "IndexingSplit",
    "compute_indexing_split",
    "size_filter_threshold",
    "verification_bounds",
]

_INF = math.inf


@dataclass(frozen=True)
class IndexingSplit:
    """Outcome of the index-construction scan for one vector.

    Attributes
    ----------
    boundary:
        Position (into the vector's ascending-dimension coordinate list) of
        the first indexed coordinate.  Coordinates before the boundary form
        the residual prefix ``x'``; coordinates at or after it are added to
        the posting lists.  ``boundary == len(x)`` means nothing is indexed
        (the vector cannot exceed the threshold against any other vector).
    pscore:
        The ``min(b1, b2)`` bound at the boundary — an upper bound on the
        similarity between the residual prefix and any other vector.  This
        is the value stored in the ``Q`` array.
    """

    boundary: int
    pscore: float


def compute_indexing_split(
    vector: SparseVector,
    threshold: float,
    *,
    max_vector: MaxVector | None,
    use_ap: bool,
    use_l2: bool,
    limit: int | None = None,
) -> IndexingSplit:
    """Run the index-construction bound loop of Algorithm 2.

    Scans the coordinates in ascending dimension order, maintaining the AP
    bound ``b1`` (when ``use_ap``) and the ℓ₂ bound ``b2`` (when ``use_l2``),
    and returns the position at which ``min(b1, b2)`` first reaches the
    threshold, together with the ``pscore`` value to store in ``Q``.

    Parameters
    ----------
    vector:
        The vector being indexed.
    threshold:
        Similarity threshold ``θ``.
    max_vector:
        The ``m`` vector (maximum value per dimension over the data that may
        query the index).  Required when ``use_ap`` is true.
    use_ap, use_l2:
        Which bound families to apply.  At least one must be enabled.
    limit:
        Only scan the first ``limit`` coordinates.  Used by re-indexing,
        which recomputes the boundary of an existing residual prefix.
    """
    if not use_ap and not use_l2:
        raise ValueError("at least one bound family must be enabled")
    if use_ap and max_vector is None:
        raise ValueError("the AP b1 bound requires the max vector m")

    # NOTE on the b1 increment: the paper (Algorithm 2, line 10) uses
    # ``x_j * min(m_j, vm_x)``, inheriting Bayardo et al.'s refinement that is
    # only sound when vectors are processed in decreasing order of their
    # maximum weight.  A data stream cannot be reordered, so we use the
    # unconditional bound ``x_j * m_j`` (slightly looser, never misses a
    # pair).  See DESIGN.md, "Key algorithmic decisions".
    b1 = 0.0
    bt = 0.0
    end = len(vector) if limit is None else min(limit, len(vector))
    for position in range(end):
        dim = vector.dims[position]
        value = vector.values[position]
        b1_bound = b1 if use_ap else _INF
        b2_bound = math.sqrt(bt) if use_l2 else _INF
        pscore = min(b1_bound, b2_bound)
        if use_ap:
            b1 += value * max_vector.get(dim)  # type: ignore[union-attr]
        bt += value * value
        b1_bound = b1 if use_ap else _INF
        b2_bound = math.sqrt(bt) if use_l2 else _INF
        if min(b1_bound, b2_bound) >= threshold:
            return IndexingSplit(boundary=position, pscore=pscore)
    return IndexingSplit(boundary=end, pscore=min(b1 if use_ap else _INF,
                                                  math.sqrt(bt) if use_l2 else _INF))


def size_filter_threshold(threshold: float, query_max_value: float) -> float:
    """The ``sz1 = θ / vm_x`` size-filter threshold of Algorithm 3 (AP bound).

    A candidate ``y`` can be ``θ``-similar to the query only when
    ``|y| · vm_y ≥ sz1``.
    """
    if query_max_value <= 0:
        return _INF
    return threshold / query_max_value


def verification_bounds(
    accumulated: float,
    query: SparseVector,
    candidate: ResidualEntry,
) -> tuple[float, float, float]:
    """The candidate-verification bounds ``(ps1, ds1, sz2)`` of Algorithm 4.

    The returned values are *undecayed*; the streaming variants multiply
    them by ``exp(-λ Δt)`` before comparing against the threshold
    (Algorithm 8, lines 3–5).

    ``accumulated`` is ``C[ι(y)]`` — the partial dot product over the indexed
    coordinates of the candidate — and ``candidate`` provides the residual
    prefix statistics of ``y'``.
    """
    ps1 = accumulated + candidate.pscore
    residual_max = candidate.residual_max
    ds1 = accumulated + min(
        query.max_value * candidate.residual_sum,
        residual_max * query.value_sum,
    )
    sz2 = accumulated + (
        min(len(query), candidate.residual_size) * query.max_value * residual_max
    )
    return ps1, ds1, sz2
