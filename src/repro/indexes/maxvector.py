"""Maximum-weight vectors ``m``, ``m̂`` and the decayed variant ``m̂^λ``.

Three related structures from the paper:

* ``m`` — per-dimension maximum over the data that may *query* the index.
  In the batch setting it is computed over the whole dataset; in the
  streaming setting it is maintained online and only ever grows, which is
  what triggers re-indexing in STR-L2AP.
* ``m̂`` — per-dimension maximum over the vectors already *indexed*; used by
  the AP ``rs1`` bound during candidate generation.
* ``m̂^λ`` — the time-decayed analogue for the streaming case,
  ``m̂^λ_j(t) = max_x x_j · exp(-λ (t − t(x)))`` over indexed ``x``.

For ``m̂^λ`` we exploit the fact that the ratio of two exponentially decayed
values is constant over time: if ``a·e^{-λ(t−t_a)} ≥ b·e^{-λ(t−t_b)}`` holds
at one instant it holds at every instant, so keeping the single dominating
``(value, timestamp)`` per dimension gives the exact maximum.  When the
dominating vector is later pruned from the index the retained value is only
an over-estimate, which keeps the bound safe (no false negatives).
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.core.vector import SparseVector

__all__ = ["MaxVector", "DecayedMaxVector"]


class MaxVector:
    """Per-dimension maximum value (the paper's ``m`` / ``m̂``)."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: dict[int, float] = {}

    @classmethod
    def from_vectors(cls, vectors: Iterable[SparseVector]) -> "MaxVector":
        """Build the maximum vector of a dataset (batch setting)."""
        result = cls()
        for vector in vectors:
            result.update(vector)
        return result

    def __len__(self) -> int:
        return len(self._values)

    def get(self, dim: int) -> float:
        """Maximum value seen on ``dim`` (0 when the dimension never appeared)."""
        return self._values.get(dim, 0.0)

    def update(self, vector: SparseVector) -> list[int]:
        """Fold a vector into the maxima; return the dimensions that grew."""
        grown: list[int] = []
        values = self._values
        for dim, value in vector:
            if value > values.get(dim, 0.0):
                values[dim] = value
                grown.append(dim)
        return grown

    def merge(self, other: "MaxVector") -> None:
        """Point-wise maximum with another max vector (used by MB's §6.1 step)."""
        for dim, value in other._values.items():
            if value > self._values.get(dim, 0.0):
                self._values[dim] = value

    def copy(self) -> "MaxVector":
        clone = MaxVector()
        clone._values = dict(self._values)
        return clone

    def dot(self, vector: SparseVector) -> float:
        """Dot product ``dot(x, m)`` restricted to the dimensions of ``x``."""
        return sum(value * self._values.get(dim, 0.0) for dim, value in vector)

    def as_dict(self) -> dict[int, float]:
        return dict(self._values)


class DecayedMaxVector:
    """Time-decayed per-dimension maximum ``m̂^λ`` (streaming CG bound)."""

    __slots__ = ("_decay", "_entries")

    def __init__(self, decay: float) -> None:
        self._decay = float(decay)
        # dim -> (value, timestamp) of the dominating contribution
        self._entries: dict[int, tuple[float, float]] = {}

    @property
    def decay(self) -> float:
        return self._decay

    def __len__(self) -> int:
        return len(self._entries)

    def update(self, vector: SparseVector) -> None:
        """Fold a newly indexed vector into the decayed maxima."""
        now = vector.timestamp
        entries = self._entries
        decay = self._decay
        for dim, value in vector:
            current = entries.get(dim)
            if current is None:
                entries[dim] = (value, now)
                continue
            current_value, current_time = current
            # Compare both contributions at the present instant; because the
            # ratio is time-invariant the winner dominates forever.
            decayed_current = current_value * math.exp(-decay * (now - current_time))
            if value >= decayed_current:
                entries[dim] = (value, now)

    def value_at(self, dim: int, now: float) -> float:
        """``m̂^λ_j(now)``; 0 when the dimension never appeared."""
        entry = self._entries.get(dim)
        if entry is None:
            return 0.0
        value, timestamp = entry
        if now <= timestamp:
            return value
        return value * math.exp(-self._decay * (now - timestamp))

    def dot(self, vector: SparseVector) -> float:
        """``dot(x, m̂^λ)`` evaluated at the arrival time of ``x`` (the rs1 bound)."""
        now = vector.timestamp
        return sum(value * self.value_at(dim, now) for dim, value in vector)

    def clear(self) -> None:
        self._entries.clear()
