"""Plain inverted index (INV), batch and streaming variants.

Section 5.1 of the paper.  INV applies no index-pruning bound: every
coordinate of every vector is indexed, candidate generation accumulates the
*exact* dot product from the posting lists, and candidate verification only
applies the threshold.

The streaming variant (``STR-INV``) keeps the posting lists in time order,
which enables the two time-filtering optimisations of Sections 5.1 and 6.2:
candidate generation scans each list backwards (newest first), stops at the
first entry older than the horizon ``τ`` and truncates everything before it
in constant time.
"""

from __future__ import annotations

from repro import obs
from repro.backends import CandidateSet, SimilarityKernel
from repro.core.results import JoinStatistics, SimilarPair
from repro.core.similarity import time_horizon
from repro.core.vector import SparseVector
from repro.exceptions import InvalidParameterError
from repro.indexes.base import (
    BatchIndex,
    StreamingIndex,
    register_batch_index,
    register_streaming_index,
)
from repro.indexes.posting import InvertedIndex

__all__ = ["InvertedBatchIndex", "InvertedStreamingIndex"]


@register_batch_index
class InvertedBatchIndex(BatchIndex):
    """Batch INV: index everything, accumulate exact dot products."""

    name = "INV"

    def __init__(self, threshold: float, *, stats: JoinStatistics | None = None,
                 backend: str | SimilarityKernel | None = None,
                 approx=None) -> None:
        if approx is not None:
            raise InvalidParameterError(
                "the INV schemes accumulate exact dot products during the "
                "scan and have no prefilter stage; approx mode requires a "
                "prefix-filter scheme (AP, L2, L2AP)")
        super().__init__(threshold, stats=stats, backend=backend)
        self._index = InvertedIndex(self.kernel.new_posting_list)
        self._vectors: dict[int, SparseVector] = {}

    @property
    def size(self) -> int:
        return len(self._index)

    def index_vector(self, vector: SparseVector) -> None:
        indexed = self.kernel.index_vector_postings(self._index, vector)
        self._vectors[vector.vector_id] = vector
        self.stats.entries_indexed += indexed
        self.stats.max_index_size = max(self.stats.max_index_size, len(self._index))

    def candidate_generation(self, vector: SparseVector) -> CandidateSet:
        stats = self.stats
        kernel = self.kernel
        accumulator = kernel.new_accumulator()
        # One fused kernel call covers every query dimension's list.
        stats.entries_traversed += kernel.scan_query_inv_batch(
            vector, self._index, accumulator)
        candidates = accumulator.finalize()
        stats.candidates_generated += len(candidates)
        return candidates

    def candidate_verification(
        self, vector: SparseVector, candidates: CandidateSet
    ) -> list[tuple[SparseVector, float]]:
        # CG already produced the exact dot product; CV just thresholds.
        matches: list[tuple[SparseVector, float]] = []
        for candidate_id, score in candidates.above(self.threshold):
            self.stats.full_similarities += 1
            matches.append((self._vectors[candidate_id], score))
        return matches


@register_streaming_index
class InvertedStreamingIndex(StreamingIndex):
    """STR-INV: inverted index with lazy time filtering on time-ordered lists."""

    name = "INV"
    time_ordered = True

    def __init__(self, threshold: float, decay: float, *,
                 stats: JoinStatistics | None = None,
                 backend: str | SimilarityKernel | None = None,
                 approx=None) -> None:
        if approx is not None:
            raise InvalidParameterError(
                "the INV schemes accumulate exact dot products during the "
                "scan and have no prefilter stage; approx mode requires a "
                "prefix-filter scheme (AP, L2, L2AP)")
        super().__init__(threshold, decay, stats=stats, backend=backend)
        self.horizon = time_horizon(threshold, decay)
        self._index = self._make_index()
        # Counter export only (shared with the prefix schemes); the scan
        # and append hot paths are untouched.
        from repro.indexes.prefix import collect_index_stats

        self._obs_tracker = obs.DeltaTracker()
        if obs.enabled():
            obs.get_registry().add_collector(collect_index_stats, owner=self)

    # -- storage / scan hooks (see PrefixFilterStreamingIndex) ----------------

    def _make_index(self) -> InvertedIndex:
        return InvertedIndex(self.kernel.new_posting_list)

    def _scan_query(self, vector: SparseVector, cutoff: float,
                    accumulator) -> tuple[int, int]:
        return self.kernel.scan_query_inv_stream(
            vector, self._index, cutoff, accumulator)

    def _append_postings(self, vector: SparseVector) -> int:
        return self.kernel.index_vector_postings(self._index, vector)

    @property
    def size(self) -> int:
        return len(self._index)

    def process(self, vector: SparseVector) -> list[SimilarPair]:
        now = vector.timestamp
        cutoff = now - self.horizon
        stats = self.stats

        # -- CG: accumulate exact dot products from the time-ordered lists,
        # truncating the expired head of each list (lazy time filtering).
        # The whole query is one fused kernel call behind the hook.
        kernel = self.kernel
        accumulator = kernel.new_accumulator()
        traversed, removed = self._scan_query(vector, cutoff, accumulator)
        stats.entries_traversed += traversed
        if removed:
            self._index.note_removed(removed)
            stats.entries_pruned += removed
        candidates = accumulator.finalize()
        stats.candidates_generated += len(candidates)

        # -- CV: apply the time decay and the threshold (fused in the kernel).
        pairs = kernel.verify_inv_stream(
            vector, candidates, self.threshold, self.decay, now, stats)

        # -- IC: append every coordinate (no index pruning in INV).
        stats.entries_indexed += self._append_postings(vector)
        stats.vectors_processed += 1
        stats.pairs_output += len(pairs)
        stats.max_index_size = max(stats.max_index_size, len(self._index))
        return pairs
