"""Abstract interfaces and registry for the indexing schemes.

The paper factors every indexing scheme into three phases (Section 4):

* **IC** — index construction: add (some coordinates of) a new vector to the
  inverted index,
* **CG** — candidate generation: use the index to find a superset of the
  vectors similar to a query,
* **CV** — candidate verification: compute exact similarities for the
  candidates and filter by the threshold.

:class:`BatchIndex` exposes these phases for a static dataset (the classic
all-pairs similarity search, used directly by :func:`repro.core.batch.all_pairs`
and as a black box by the MiniBatch framework).  :class:`StreamingIndex`
is the interface the STR framework drives: a single :meth:`StreamingIndex.process`
call performs CG + CV against the current index state and then folds the
new vector in (Algorithm 6), applying time filtering internally.

Concrete schemes register themselves in :data:`BATCH_INDEXES` and
:data:`STREAMING_INDEXES`, which power the string-based algorithm selection
of the public API (``"STR-L2"``, ``"MB-INV"``, ...).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable

from repro.backends import CandidateSet, SimilarityKernel, resolve_kernel
from repro.core.results import JoinStatistics, SimilarPair
from repro.core.similarity import validate_decay, validate_threshold
from repro.core.vector import SparseVector
from repro.exceptions import UnknownAlgorithmError

__all__ = [
    "BatchIndex",
    "StreamingIndex",
    "BATCH_INDEXES",
    "STREAMING_INDEXES",
    "register_batch_index",
    "register_streaming_index",
    "create_batch_index",
    "create_streaming_index",
    "available_batch_indexes",
    "available_streaming_indexes",
]


class BatchIndex(ABC):
    """Index over a static dataset, built incrementally vector by vector.

    ``backend`` selects the compute backend for the hot loops — a name from
    :func:`repro.backends.available_backends`, ``"auto"``/``None`` for the
    default, or a ready kernel instance.
    """

    #: Scheme name used in the registry ("INV", "AP", "L2AP", "L2").
    name: str = "abstract"

    def __init__(self, threshold: float, *, stats: JoinStatistics | None = None,
                 backend: str | SimilarityKernel | None = None,
                 approx=None) -> None:
        self.threshold = validate_threshold(threshold)
        self.stats = stats if stats is not None else JoinStatistics()
        self.kernel = resolve_kernel(backend)
        self.approx = _configure_approx(self.kernel, approx)

    @property
    def backend_name(self) -> str:
        """Name of the compute backend running this index's hot loops."""
        return self.kernel.name

    # -- the three phases ------------------------------------------------------

    @abstractmethod
    def index_vector(self, vector: SparseVector) -> None:
        """IC: add (part of) ``vector`` to the index."""

    @abstractmethod
    def candidate_generation(self, vector: SparseVector) -> CandidateSet:
        """CG: return the accumulated score table ``C`` as a backend-native
        :class:`~repro.backends.CandidateSet` (use ``to_dict()`` for a plain
        dictionary view)."""

    @abstractmethod
    def candidate_verification(
        self, vector: SparseVector, candidates: CandidateSet
    ) -> list[tuple[SparseVector, float]]:
        """CV: return ``(candidate vector, exact dot product)`` for true matches."""

    # -- composite operations --------------------------------------------------

    def process(self, vector: SparseVector) -> list[tuple[SparseVector, float]]:
        """Find matches of ``vector`` against the current index, then index it."""
        candidates = self.candidate_generation(vector)
        matches = self.candidate_verification(vector, candidates)
        self.index_vector(vector)
        return matches

    def query(self, vector: SparseVector) -> list[tuple[SparseVector, float]]:
        """Find matches of ``vector`` against the current index without indexing it."""
        candidates = self.candidate_generation(vector)
        return self.candidate_verification(vector, candidates)

    def index_dataset(
        self, vectors: Iterable[SparseVector]
    ) -> list[tuple[SparseVector, SparseVector, float]]:
        """IndConstr: index a whole dataset and return its internal similar pairs."""
        pairs: list[tuple[SparseVector, SparseVector, float]] = []
        for vector in vectors:
            for candidate, score in self.process(vector):
                pairs.append((vector, candidate, score))
            self.stats.vectors_processed += 1
        return pairs

    # -- introspection ----------------------------------------------------------

    @property
    @abstractmethod
    def size(self) -> int:
        """Number of postings currently stored."""


class StreamingIndex(ABC):
    """Index driven by the STR framework; applies time filtering internally."""

    name: str = "abstract"
    #: Whether posting lists stay sorted by time (enables backward-scan truncation).
    time_ordered: bool = True

    def __init__(self, threshold: float, decay: float, *,
                 stats: JoinStatistics | None = None,
                 backend: str | SimilarityKernel | None = None,
                 approx=None) -> None:
        self.threshold = validate_threshold(threshold)
        self.decay = validate_decay(decay)
        self.stats = stats if stats is not None else JoinStatistics()
        self.kernel = resolve_kernel(backend)
        self.approx = _configure_approx(self.kernel, approx)

    @property
    def backend_name(self) -> str:
        """Name of the compute backend running this index's hot loops."""
        return self.kernel.name

    @abstractmethod
    def process(self, vector: SparseVector) -> list[SimilarPair]:
        """Report pairs involving ``vector`` and fold it into the index."""

    @property
    @abstractmethod
    def size(self) -> int:
        """Number of postings currently stored."""


def _configure_approx(kernel: SimilarityKernel, approx):
    """Parse an approx spec and enable the kernel's sketch prefilter.

    Accepts anything :func:`repro.approx.parse_approx` does (a spec string
    or a ready :class:`~repro.approx.ApproxConfig`); returns the parsed
    config, or ``None`` when approximation is off.  Must run before the
    first vector is indexed, hence its place in the index constructors.
    """
    if approx is None:
        return None
    from repro.approx import parse_approx

    config = parse_approx(approx)
    if config is not None:
        kernel.configure_approx(config)
    return config


# --------------------------------------------------------------------------
# Registry


BATCH_INDEXES: dict[str, type[BatchIndex]] = {}
STREAMING_INDEXES: dict[str, type[StreamingIndex]] = {}


def register_batch_index(cls: type[BatchIndex]) -> type[BatchIndex]:
    """Class decorator adding a batch index to the registry."""
    BATCH_INDEXES[cls.name.upper()] = cls
    return cls


def register_streaming_index(cls: type[StreamingIndex]) -> type[StreamingIndex]:
    """Class decorator adding a streaming index to the registry."""
    STREAMING_INDEXES[cls.name.upper()] = cls
    return cls


def create_batch_index(name: str, threshold: float, *,
                       stats: JoinStatistics | None = None, **kwargs) -> BatchIndex:
    """Instantiate a registered batch index by name."""
    try:
        cls = BATCH_INDEXES[name.upper()]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown batch index {name!r}; available: {sorted(BATCH_INDEXES)}"
        ) from None
    return cls(threshold, stats=stats, **kwargs)


def create_streaming_index(name: str, threshold: float, decay: float, *,
                           stats: JoinStatistics | None = None, **kwargs) -> StreamingIndex:
    """Instantiate a registered streaming index by name."""
    try:
        cls = STREAMING_INDEXES[name.upper()]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown streaming index {name!r}; available: {sorted(STREAMING_INDEXES)}"
        ) from None
    return cls(threshold, decay, stats=stats, **kwargs)


def available_batch_indexes() -> list[str]:
    """Names of the registered batch indexes."""
    return sorted(BATCH_INDEXES)


def available_streaming_indexes() -> list[str]:
    """Names of the registered streaming indexes."""
    return sorted(STREAMING_INDEXES)
