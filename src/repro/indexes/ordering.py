"""Dimension-ordering strategies for the prefix-filtering indexes.

The paper's conclusion lists *"experiment with dimension-ordering
strategies and evaluate the cost-benefit trade-off of maintaining a
dimension ordering"* as future work.  In the batch APSS literature the
processing order of the dimensions strongly affects how much of each vector
the prefix filter can leave un-indexed: Bayardo et al. order dimensions by
decreasing document frequency so that the *rare* dimensions end up in the
indexed suffix and posting lists stay short.

This module implements that knob for the batch indexes (and for offline
experimentation with the streaming ones):

* :class:`DimensionOrdering` — a permutation of dimension ids derived from
  a dataset by one of three strategies (``natural``, ``frequency``,
  ``max_weight``),
* :func:`remap_vectors` / :meth:`DimensionOrdering.remap` — rewrite vectors
  into the permuted dimension space (and back), so the existing indexes can
  be used unchanged.

A true streaming deployment cannot fix a global ordering in advance — that
is exactly the trade-off the paper leaves open — but the ablation benchmark
``benchmarks/bench_ordering.py`` quantifies what a batch system gains from
it, which is the cost-benefit data point the authors call for.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence

from repro.core.vector import SparseVector
from repro.exceptions import InvalidParameterError

__all__ = ["ORDERING_STRATEGIES", "DimensionOrdering", "remap_vectors"]

ORDERING_STRATEGIES = ("natural", "frequency", "max_weight")


class DimensionOrdering:
    """A bijective remapping of dimension ids derived from a dataset.

    Strategies
    ----------
    ``natural``
        Keep the original dimension ids (identity mapping).
    ``frequency``
        Dimensions that occur in many vectors get *small* new ids, so they
        are scanned first during index construction and tend to fall into
        the un-indexed residual prefix; rare dimensions form the indexed
        suffix, keeping posting lists short (Bayardo et al.'s choice).
    ``max_weight``
        Dimensions with a small maximum weight get small new ids; dimensions
        that can contribute a lot of similarity end up indexed.
    """

    def __init__(self, mapping: dict[int, int], strategy: str) -> None:
        self._forward = dict(mapping)
        self._backward = {new: old for old, new in mapping.items()}
        if len(self._backward) != len(self._forward):
            raise InvalidParameterError("dimension mapping must be a bijection")
        self.strategy = strategy

    # -- construction -------------------------------------------------------------

    @classmethod
    def identity(cls) -> "DimensionOrdering":
        """The natural (no-op) ordering."""
        return cls({}, "natural")

    @classmethod
    def from_vectors(cls, vectors: Iterable[SparseVector],
                     strategy: str = "frequency") -> "DimensionOrdering":
        """Derive an ordering from a dataset with the given strategy."""
        key = strategy.lower()
        if key not in ORDERING_STRATEGIES:
            raise InvalidParameterError(
                f"unknown ordering strategy {strategy!r}; "
                f"expected one of {ORDERING_STRATEGIES}"
            )
        if key == "natural":
            return cls.identity()
        frequency: Counter[int] = Counter()
        max_weight: dict[int, float] = {}
        for vector in vectors:
            for dim, value in vector:
                frequency[dim] += 1
                if value > max_weight.get(dim, 0.0):
                    max_weight[dim] = value
        if key == "frequency":
            # Most frequent first => smallest new id.
            ranked = sorted(frequency, key=lambda dim: (-frequency[dim], dim))
        else:
            # Smallest maximum weight first => smallest new id.
            ranked = sorted(max_weight, key=lambda dim: (max_weight[dim], dim))
        mapping = {dim: position for position, dim in enumerate(ranked)}
        return cls(mapping, key)

    # -- application ----------------------------------------------------------------

    def map_dimension(self, dim: int) -> int:
        """New id of an original dimension (unknown dimensions keep their id)."""
        return self._forward.get(dim, dim)

    def unmap_dimension(self, dim: int) -> int:
        """Original id of a remapped dimension."""
        return self._backward.get(dim, dim)

    def remap(self, vector: SparseVector) -> SparseVector:
        """Rewrite a vector into the permuted dimension space."""
        if not self._forward:
            return vector
        entries = {self.map_dimension(dim): value for dim, value in vector}
        return SparseVector(vector.vector_id, vector.timestamp, entries, normalize=False)

    def remap_all(self, vectors: Sequence[SparseVector]) -> list[SparseVector]:
        """Remap a whole dataset."""
        return [self.remap(vector) for vector in vectors]

    def __len__(self) -> int:
        """Number of explicitly remapped dimensions."""
        return len(self._forward)


def remap_vectors(vectors: Sequence[SparseVector],
                  strategy: str = "frequency") -> tuple[list[SparseVector], DimensionOrdering]:
    """Derive an ordering from ``vectors`` and return the remapped dataset.

    Convenience wrapper used by the batch driver and the ordering ablation:
    the returned ordering can translate reported dimension ids back via
    :meth:`DimensionOrdering.unmap_dimension` if needed.
    """
    ordering = DimensionOrdering.from_vectors(vectors, strategy)
    return ordering.remap_all(vectors), ordering
