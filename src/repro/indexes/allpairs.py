"""AP indexing scheme (Bayardo et al., Section 5.2 of the paper).

AP improves over the plain inverted index by not indexing the prefix of
each vector whose potential similarity (the ``b1`` bound against the
dataset maximum vector ``m``) stays below the threshold.  Candidate
generation adds the size filter ``sz1`` and the remaining-score bound
``rs1``; verification adds ``ps1``/``ds1``/``sz2``.

The paper notes that the streaming adaptations of AP are not efficient in
practice and omits them from the evaluation; we therefore expose only the
batch variant (used by the MiniBatch framework and the static all-pairs
driver).  The streaming prefix-filter machinery with only AP bounds is
still reachable through :class:`repro.indexes.prefix.PrefixFilterStreamingIndex`
for completeness and for the ablation benchmarks.
"""

from __future__ import annotations

from repro.indexes.base import register_batch_index, register_streaming_index
from repro.indexes.prefix import PrefixFilterBatchIndex, PrefixFilterStreamingIndex

__all__ = ["APBatchIndex", "APStreamingIndex"]


@register_batch_index
class APBatchIndex(PrefixFilterBatchIndex):
    """Batch AP index: AP bounds only (Algorithms 2–4, red lines)."""

    name = "AP"
    use_ap = True
    use_l2 = False


@register_streaming_index
class APStreamingIndex(PrefixFilterStreamingIndex):
    """Streaming AP index (kept for ablations; the paper omits it as too slow)."""

    name = "AP"
    use_ap = True
    use_l2 = False
