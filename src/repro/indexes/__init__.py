"""Indexing schemes for the (streaming) similarity self-join.

Importing this package registers every concrete scheme with the registry in
:mod:`repro.indexes.base`, so string-based algorithm selection
(``"STR-L2"``, ``"MB-INV"``, ...) works as soon as :mod:`repro` is imported.
"""

from repro.indexes.allpairs import APBatchIndex, APStreamingIndex
from repro.indexes.base import (
    BATCH_INDEXES,
    STREAMING_INDEXES,
    BatchIndex,
    StreamingIndex,
    available_batch_indexes,
    available_streaming_indexes,
    create_batch_index,
    create_streaming_index,
)
from repro.indexes.inverted import InvertedBatchIndex, InvertedStreamingIndex
from repro.indexes.l2 import L2BatchIndex, L2StreamingIndex
from repro.indexes.l2ap import L2APBatchIndex, L2APStreamingIndex
from repro.indexes.ordering import ORDERING_STRATEGIES, DimensionOrdering, remap_vectors

__all__ = [
    "ORDERING_STRATEGIES",
    "DimensionOrdering",
    "remap_vectors",
    "BatchIndex",
    "StreamingIndex",
    "BATCH_INDEXES",
    "STREAMING_INDEXES",
    "available_batch_indexes",
    "available_streaming_indexes",
    "create_batch_index",
    "create_streaming_index",
    "InvertedBatchIndex",
    "InvertedStreamingIndex",
    "APBatchIndex",
    "APStreamingIndex",
    "L2APBatchIndex",
    "L2APStreamingIndex",
    "L2BatchIndex",
    "L2StreamingIndex",
]
