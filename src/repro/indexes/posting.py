"""Inverted-index posting lists.

The index ``I = {I_1, ..., I_d}`` of the paper is a collection of posting
lists, one per dimension.  A posting entry for vector ``x`` in list ``I_j``
is the triple ``(ι(x), x_j, ‖x'_j‖)`` (the prefix norm is only used by the
ℓ₂-based schemes); the streaming variants additionally need the arrival
time ``t(x)`` to apply time filtering, so entries carry four fields.

The *layout* of a posting list belongs to the compute backend: the
reference backend's :class:`PostingList` (defined here) is backed by
:class:`~repro.indexes.circular.CircularBuffer` (Section 6.2), while the
NumPy backend stores every dimension's postings in one shared posting
arena and hands out per-dimension extent handles with the same interface
(:class:`repro.backends.arena.ArenaPostingList`).
:class:`InvertedIndex` is layout-agnostic — it takes a posting-list
factory, usually a kernel's ``new_posting_list``.  Time-ordered lists
(INV, L2) support the backward scan with head truncation; unordered lists
(L2AP after re-indexing) are compacted by rewriting their content (the
arena layout defers that rewrite and amortises it across queries).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass

from repro.indexes.circular import CircularBuffer

__all__ = ["PostingEntry", "PostingList", "InvertedIndex"]


@dataclass(frozen=True)
class PostingEntry:
    """One posting: ``(ι(x), x_j, ‖x'_j‖, t(x))``."""

    vector_id: int
    value: float
    prefix_norm: float
    timestamp: float


class PostingList:
    """A single posting list ``I_j``."""

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer: CircularBuffer[PostingEntry] = CircularBuffer()

    def __len__(self) -> int:
        return len(self._buffer)

    def __bool__(self) -> bool:
        return bool(self._buffer)

    def __iter__(self) -> Iterator[PostingEntry]:
        """Iterate oldest → newest."""
        return iter(self._buffer)

    def iter_newest_first(self) -> Iterator[PostingEntry]:
        """Iterate newest → oldest (backward CG scan)."""
        return self._buffer.iter_newest_first()

    def append(self, entry: PostingEntry) -> None:
        """Append a posting at the tail."""
        self._buffer.append(entry)

    def truncate_older_than(self, cutoff: float) -> int:
        """Drop the head entries with ``timestamp < cutoff``.

        Assumes the list is time ordered (oldest at the head), which holds
        for the INV and L2 streaming indexes.  Returns the number of
        dropped postings.
        """
        drop = 0
        for entry in self._buffer:
            if entry.timestamp >= cutoff:
                break
            drop += 1
        return self._buffer.drop_oldest(drop)

    def keep_newest(self, count: int) -> int:
        """Keep only the ``count`` newest postings (backward-scan truncation)."""
        return self._buffer.keep_newest(count)

    def replace_all_entries(self, entries: list[PostingEntry]) -> None:
        """Replace the whole content with ``entries`` (oldest first)."""
        self._buffer.replace_all(entries)

    def compact(self, cutoff: float) -> int:
        """Remove every posting with ``timestamp < cutoff`` regardless of order.

        Used by the streaming L2AP index, whose lists lose time order after
        re-indexing.  Returns the number of removed postings.
        """
        kept = [entry for entry in self._buffer if entry.timestamp >= cutoff]
        removed = len(self._buffer) - len(kept)
        if removed:
            self._buffer.replace_all(kept)
        return removed

    def to_list(self) -> list[PostingEntry]:
        """Copy of the postings from oldest to newest."""
        return self._buffer.to_list()


class InvertedIndex:
    """Collection of posting lists keyed by dimension id.

    ``list_factory`` controls the posting-list layout; it defaults to the
    reference ring-buffer :class:`PostingList` and is normally a compute
    kernel's ``new_posting_list``.
    """

    __slots__ = ("_lists", "_total_entries", "_list_factory")

    def __init__(self, list_factory: Callable[[], "PostingList"] | None = None) -> None:
        self._lists: dict[int, PostingList] = {}
        self._total_entries = 0
        self._list_factory = list_factory if list_factory is not None else PostingList

    def __len__(self) -> int:
        """Total number of postings across every list."""
        return self._total_entries

    def __contains__(self, dim: int) -> bool:
        return dim in self._lists and bool(self._lists[dim])

    def dimensions(self) -> Iterator[int]:
        """Dimensions that currently have a (possibly empty) posting list."""
        return iter(self._lists)

    def get(self, dim: int) -> PostingList | None:
        """Posting list for ``dim`` or ``None`` when no posting was ever added."""
        return self._lists.get(dim)

    def list_for(self, dim: int) -> PostingList:
        """Posting list for ``dim``, creating it on first use."""
        posting_list = self._lists.get(dim)
        if posting_list is None:
            posting_list = self._list_factory()
            self._lists[dim] = posting_list
        return posting_list

    def add(self, dim: int, entry: PostingEntry) -> None:
        """Append ``entry`` to the list of ``dim``."""
        self.list_for(dim).append(entry)
        self._total_entries += 1

    def note_added(self, count: int) -> None:
        """Adjust the global size after a kernel-level bulk append."""
        self._total_entries += count

    def note_removed(self, count: int) -> None:
        """Adjust the global size after a list-level prune."""
        self._total_entries -= count
        if self._total_entries < 0:  # defensive; should never happen
            self._total_entries = 0

    def prune_older_than(self, cutoff: float, *, ordered: bool) -> int:
        """Remove expired postings from every list; return the total removed."""
        removed = 0
        for posting_list in self._lists.values():
            if ordered:
                removed += posting_list.truncate_older_than(cutoff)
            else:
                removed += posting_list.compact(cutoff)
        self.note_removed(removed)
        return removed

    def clear(self) -> None:
        self._lists.clear()
        self._total_entries = 0
