"""Circular buffer used as the backing store of posting lists.

Section 6.2 of the paper: *"In order to avoid many and small memory
(de)allocations, we implement posting lists using a circular byte buffer.
When the buffer becomes full we double its capacity, while when its size
drops below 1/4 we halve it."*

:class:`CircularBuffer` reproduces that behaviour for arbitrary Python
objects.  Items are appended at the tail (newest) and removed from the head
(oldest), which matches how the streaming indexes prune expired postings:
the head of a time-ordered list always holds the oldest entry.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Generic, TypeVar

T = TypeVar("T")

__all__ = ["CircularBuffer"]

_MIN_CAPACITY = 8


class CircularBuffer(Generic[T]):
    """A ring buffer with amortised O(1) append and drop-from-head.

    Capacity doubles when full and halves when occupancy drops below a
    quarter (never below ``_MIN_CAPACITY``), mirroring the resizing policy
    described in the paper.
    """

    __slots__ = ("_data", "_head", "_size", "_capacity")

    def __init__(self, capacity: int = _MIN_CAPACITY) -> None:
        self._capacity = max(int(capacity), _MIN_CAPACITY)
        self._data: list[T | None] = [None] * self._capacity
        self._head = 0
        self._size = 0

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def capacity(self) -> int:
        """Current allocated capacity of the ring."""
        return self._capacity

    def __getitem__(self, index: int) -> T:
        """Item at logical position ``index`` (0 = oldest, -1 = newest)."""
        if index < 0:
            index += self._size
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range for size {self._size}")
        return self._data[(self._head + index) % self._capacity]  # type: ignore[return-value]

    def __iter__(self) -> Iterator[T]:
        """Iterate from oldest to newest."""
        for offset in range(self._size):
            yield self._data[(self._head + offset) % self._capacity]  # type: ignore[misc]

    def iter_newest_first(self) -> Iterator[T]:
        """Iterate from newest to oldest (used by the backward CG scan)."""
        for offset in range(self._size - 1, -1, -1):
            yield self._data[(self._head + offset) % self._capacity]  # type: ignore[misc]

    def to_list(self) -> list[T]:
        """Copy of the contents from oldest to newest."""
        return list(self)

    # -- mutation -------------------------------------------------------------

    def append(self, item: T) -> None:
        """Append ``item`` at the tail (newest position)."""
        if self._size == self._capacity:
            self._resize(self._capacity * 2)
        self._data[(self._head + self._size) % self._capacity] = item
        self._size += 1

    def drop_oldest(self, count: int) -> int:
        """Remove up to ``count`` items from the head; return how many were dropped."""
        if count <= 0:
            return 0
        dropped = min(count, self._size)
        for offset in range(dropped):
            self._data[(self._head + offset) % self._capacity] = None
        self._head = (self._head + dropped) % self._capacity
        self._size -= dropped
        self._maybe_shrink()
        return dropped

    def keep_newest(self, count: int) -> int:
        """Keep only the ``count`` newest items; return how many were dropped."""
        return self.drop_oldest(self._size - max(count, 0))

    def replace_all(self, items: list[T]) -> None:
        """Replace the whole content (used when compacting unordered lists)."""
        self._size = 0
        self._head = 0
        needed = max(_MIN_CAPACITY, len(items))
        if needed > self._capacity or needed * 4 < self._capacity:
            self._capacity = self._next_capacity(needed)
            self._data = [None] * self._capacity
        else:
            for position in range(len(self._data)):
                self._data[position] = None
        for item in items:
            self.append(item)

    def clear(self) -> None:
        """Remove every item and reset to the minimum capacity."""
        self._data = [None] * _MIN_CAPACITY
        self._capacity = _MIN_CAPACITY
        self._head = 0
        self._size = 0

    # -- internal -------------------------------------------------------------

    @staticmethod
    def _next_capacity(needed: int) -> int:
        capacity = _MIN_CAPACITY
        while capacity < needed:
            capacity *= 2
        return capacity

    def _maybe_shrink(self) -> None:
        if self._capacity > _MIN_CAPACITY and self._size * 4 < self._capacity:
            self._resize(max(_MIN_CAPACITY, self._capacity // 2))

    def _resize(self, new_capacity: int) -> None:
        items = self.to_list()
        self._capacity = max(new_capacity, _MIN_CAPACITY, len(items))
        self._data = [None] * self._capacity
        self._head = 0
        self._size = 0
        for item in items:
            self._data[self._size] = item
            self._size += 1
