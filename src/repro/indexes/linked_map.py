"""Linked hash-map used for the residual index ``R`` and the ``Q`` array.

Section 6.2 of the paper: *"we implement them using a linked hash-map,
which combines a hash-map for fast retrieval, and a linked list for
sequential access. The sequential access is the order in which the data
items are inserted in the data structure, which is also the time order."*

:class:`LinkedHashMap` provides exactly the operations the streaming
indexes need: O(1) insertion, lookup and deletion, plus iteration and
eviction in insertion (= arrival time) order.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator
from typing import Callable, Generic, TypeVar

K = TypeVar("K")
V = TypeVar("V")

__all__ = ["LinkedHashMap"]


class LinkedHashMap(Generic[K, V]):
    """Insertion-ordered map with head (oldest) eviction helpers."""

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: OrderedDict[K, V] = OrderedDict()

    # -- mapping protocol ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __contains__(self, key: K) -> bool:
        return key in self._items

    def __getitem__(self, key: K) -> V:
        return self._items[key]

    def __setitem__(self, key: K, value: V) -> None:
        """Insert or update; updating does not change the item's position."""
        self._items[key] = value

    def __delitem__(self, key: K) -> None:
        del self._items[key]

    def get(self, key: K, default: V | None = None) -> V | None:
        return self._items.get(key, default)

    def pop(self, key: K, default: V | None = None) -> V | None:
        return self._items.pop(key, default)

    def keys(self) -> Iterator[K]:
        return iter(self._items.keys())

    def values(self) -> Iterator[V]:
        return iter(self._items.values())

    def items(self) -> Iterator[tuple[K, V]]:
        return iter(self._items.items())

    def __iter__(self) -> Iterator[K]:
        return iter(self._items)

    def clear(self) -> None:
        self._items.clear()

    # -- insertion-order helpers ----------------------------------------------

    def oldest(self) -> tuple[K, V]:
        """The key/value inserted earliest; raises ``KeyError`` when empty."""
        if not self._items:
            raise KeyError("oldest() on an empty LinkedHashMap")
        key = next(iter(self._items))
        return key, self._items[key]

    def newest(self) -> tuple[K, V]:
        """The key/value inserted most recently; raises ``KeyError`` when empty."""
        if not self._items:
            raise KeyError("newest() on an empty LinkedHashMap")
        key = next(reversed(self._items))
        return key, self._items[key]

    def pop_oldest(self) -> tuple[K, V]:
        """Remove and return the oldest entry."""
        return self._items.popitem(last=False)

    def evict_while(self, predicate: Callable[[K, V], bool]) -> list[tuple[K, V]]:
        """Pop entries from the head as long as ``predicate(key, value)`` holds.

        Returns the evicted entries in eviction order.  This is how the
        streaming indexes prune residual entries older than the horizon:
        because insertion order equals arrival order, the head always holds
        the oldest vector.
        """
        evicted: list[tuple[K, V]] = []
        while self._items:
            key = next(iter(self._items))
            value = self._items[key]
            if not predicate(key, value):
                break
            evicted.append(self._items.popitem(last=False))
        return evicted
