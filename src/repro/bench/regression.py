"""Linear regression of running time on the horizon τ (Figure 9).

The paper closes its evaluation by showing that the running time of STR-L2
is roughly a linear function of the time horizon ``τ = λ⁻¹ ln θ⁻¹``, with
WebSpam as an outlier because of its much higher density.  This module
provides the least-squares fit used to reproduce that figure.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["LinearFit", "fit_line"]


@dataclass(frozen=True)
class LinearFit:
    """Least-squares line ``y = slope·x + intercept`` with its fit quality."""

    slope: float
    intercept: float
    r_squared: float
    num_points: int

    def predict(self, x: float) -> float:
        """Value of the fitted line at ``x``."""
        return self.slope * x + self.intercept


def fit_line(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Ordinary least-squares fit of ``ys`` on ``xs``.

    Raises ``ValueError`` with fewer than two points (no line is defined).
    """
    if len(xs) != len(ys):
        raise ValueError(f"mismatched lengths: {len(xs)} vs {len(ys)}")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit a line")
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    slope, intercept = np.polyfit(x, y, deg=1)
    predictions = slope * x + intercept
    total = float(np.sum((y - y.mean()) ** 2))
    residual = float(np.sum((y - predictions) ** 2))
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return LinearFit(slope=float(slope), intercept=float(intercept),
                     r_squared=r_squared, num_points=len(xs))
