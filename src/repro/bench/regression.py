"""Regression, in both senses.

1. Linear regression of running time on the horizon τ (Figure 9): the
   paper closes its evaluation by showing that the running time of STR-L2
   is roughly a linear function of the time horizon ``τ = λ⁻¹ ln θ⁻¹``,
   with WebSpam as an outlier because of its much higher density.
   :func:`fit_line` provides the least-squares fit used to reproduce that
   figure.

2. Performance-regression checking of the ``BENCH_micro.json`` artifacts
   written by ``benchmarks/bench_micro.py``: :func:`check_regression`
   compares a current record against a committed baseline and fails when a
   tracked metric degrades beyond the tolerance.  The primary metric is the
   numpy-over-python *speedup*, which divides out the machine, so CI runs
   on different hardware than the baseline remain comparable.  Both the
   single-benchmark schema-1 records and the schema-2 multi-benchmark
   artifacts (one entry per gate) are understood; every benchmark present
   in *both* records is compared.  Runnable as
   ``python -m repro.bench.regression CURRENT BASELINE [--tolerance 0.2]``.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["LinearFit", "fit_line", "MetricCheck", "RegressionReport",
           "check_regression", "config_mismatches", "main"]


@dataclass(frozen=True)
class LinearFit:
    """Least-squares line ``y = slope·x + intercept`` with its fit quality."""

    slope: float
    intercept: float
    r_squared: float
    num_points: int

    def predict(self, x: float) -> float:
        """Value of the fitted line at ``x``."""
        return self.slope * x + self.intercept


def fit_line(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Ordinary least-squares fit of ``ys`` on ``xs``.

    Raises ``ValueError`` with fewer than two points (no line is defined).
    """
    if len(xs) != len(ys):
        raise ValueError(f"mismatched lengths: {len(xs)} vs {len(ys)}")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit a line")
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    slope, intercept = np.polyfit(x, y, deg=1)
    predictions = slope * x + intercept
    total = float(np.sum((y - y.mean()) ** 2))
    residual = float(np.sum((y - predictions) ** 2))
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return LinearFit(slope=float(slope), intercept=float(intercept),
                     r_squared=r_squared, num_points=len(xs))


# ---------------------------------------------------------------------------
# Performance-regression checking of BENCH_micro.json artifacts.

#: Machine-comparable metrics tracked across PRs, as dotted paths into the
#: artifact record, with the direction in which "bigger" is better.
#: ``derived.speedup`` divides numpy by python; ``derived.throughput_ratio``
#: divides the service pipeline by the direct engine (the service gate) —
#: both are ratios of same-process runs, so they stay machine-comparable.
#: ``derived.recall`` is the approx gate's pair recall against the exact
#: ground-truth run — deterministic for a pinned workload and sketch seed,
#: so any drop means the prefilter itself changed.  ``derived.scan_speedup``
#: is the compiled gate's scan-stage-only ratio (numba over numpy), the
#: metric the JIT tier exists to move.
TRACKED_METRICS: tuple[tuple[str, bool], ...] = (
    ("derived.speedup", True),
    ("derived.scan_speedup", True),
    ("derived.throughput_ratio", True),
    ("derived.recall", True),
)


@dataclass(frozen=True)
class MetricCheck:
    """Outcome of comparing one tracked metric against the baseline."""

    metric: str
    baseline: float
    current: float
    ratio: float
    regressed: bool

    def render(self) -> str:
        verdict = "REGRESSED" if self.regressed else "ok"
        return (f"{self.metric}: baseline {self.baseline:.4g} → current "
                f"{self.current:.4g} ({self.ratio:+.1%}) [{verdict}]")


@dataclass
class RegressionReport:
    """All metric checks of one current-vs-baseline comparison."""

    tolerance: float
    checks: list[MetricCheck] = field(default_factory=list)

    @property
    def regressed(self) -> bool:
        return any(check.regressed for check in self.checks)

    def render(self) -> str:
        lines = [check.render() for check in self.checks]
        lines.append("performance regression detected" if self.regressed
                     else f"no regression beyond {self.tolerance:.0%} tolerance")
        return "\n".join(lines)


def _lookup(record: dict[str, Any], dotted: str) -> float | None:
    node: Any = record
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def check_regression(current: dict[str, Any], baseline: dict[str, Any], *,
                     tolerance: float = 0.2) -> RegressionReport:
    """Compare two benchmark records; flag metrics degraded past ``tolerance``.

    Every benchmark present in *both* records is compared (schema-1
    records count as a single benchmark).  A metric where bigger is
    better regresses when ``current < baseline · (1 - tolerance)``;
    metrics missing from either record are skipped (a new benchmark has
    no baseline yet).
    """
    from repro.bench.export import bench_micro_benchmarks

    report = RegressionReport(tolerance=tolerance)
    current_map = bench_micro_benchmarks(current)
    baseline_map = bench_micro_benchmarks(baseline)
    for name in sorted(current_map.keys() & baseline_map.keys()):
        for metric, bigger_is_better in TRACKED_METRICS:
            baseline_value = _lookup(baseline_map[name], metric)
            current_value = _lookup(current_map[name], metric)
            if baseline_value is None or current_value is None:
                continue
            if baseline_value == 0:
                continue
            ratio = current_value / baseline_value - 1.0
            if bigger_is_better:
                regressed = current_value < baseline_value * (1.0 - tolerance)
            else:
                regressed = current_value > baseline_value * (1.0 + tolerance)
            report.checks.append(MetricCheck(
                metric=f"{name}: {metric}", baseline=baseline_value,
                current=current_value, ratio=ratio, regressed=regressed,
            ))
    return report


def config_mismatches(current: dict[str, Any],
                      baseline: dict[str, Any]) -> list[tuple[str, Any, Any]]:
    """Keys of the ``config`` sections that disagree between two records.

    Benchmarks shared by both records are compared pairwise; only keys
    present in *both* configs are checked, so adding a new config field
    does not invalidate older baselines.  Mismatched keys are prefixed
    with the benchmark name when the records hold several benchmarks.
    """
    from repro.bench.export import bench_micro_benchmarks

    current_map = bench_micro_benchmarks(current)
    baseline_map = bench_micro_benchmarks(baseline)
    shared = sorted(current_map.keys() & baseline_map.keys())
    mismatches: list[tuple[str, Any, Any]] = []
    for name in shared:
        current_config = current_map[name].get("config")
        baseline_config = baseline_map[name].get("config")
        if not isinstance(current_config, dict) or not isinstance(baseline_config, dict):
            continue
        prefix = f"{name}: " if len(shared) > 1 else ""
        mismatches.extend(
            (prefix + key, current_config[key], baseline_config[key])
            for key in sorted(current_config.keys() & baseline_config.keys())
            if current_config[key] != baseline_config[key])
    return mismatches


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: exit 0 when within tolerance, 1 on regression, 2 when the two
    records describe different workloads (used by the CI smoke job)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.regression",
        description="Compare a BENCH_micro.json against a committed baseline.",
    )
    parser.add_argument("current", help="freshly produced BENCH_micro.json")
    parser.add_argument("baseline", help="committed baseline record")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional degradation (default 0.2)")
    args = parser.parse_args(argv)
    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; skipping regression check")
        return 0
    with open(args.current, "r", encoding="utf-8") as handle:
        current = json.load(handle)
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    mismatched = config_mismatches(current, baseline)
    if mismatched:
        # Records from different workloads must not compare silently.
        for key, current_value, baseline_value in mismatched:
            print(f"config mismatch on {key!r}: current {current_value!r} "
                  f"vs baseline {baseline_value!r}")
        print("refusing to compare records from different workloads")
        return 2
    report = check_regression(current, baseline, tolerance=args.tolerance)
    print(report.render())
    return 1 if report.regressed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
