"""Per-run metrics collected by the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.results import JoinStatistics
from repro.core.similarity import time_horizon

__all__ = ["RunMetrics"]


@dataclass
class RunMetrics:
    """Everything measured for one (algorithm, dataset, θ, λ) run.

    ``completed`` is false when the run exceeded its operation or wall-clock
    budget; incomplete runs keep whatever counters they accumulated before
    being aborted (mirroring the paper's Table 2 treatment of timed-out
    configurations).
    """

    algorithm: str
    dataset: str
    threshold: float
    decay: float
    num_vectors: int
    elapsed_seconds: float = 0.0
    pairs: int = 0
    completed: bool = True
    abort_reason: str = ""
    stats: JoinStatistics = field(default_factory=JoinStatistics)

    @property
    def horizon(self) -> float:
        """Time horizon ``τ`` of the configuration."""
        return time_horizon(self.threshold, self.decay)

    @property
    def entries_traversed(self) -> int:
        return self.stats.entries_traversed

    @property
    def candidates_generated(self) -> int:
        return self.stats.candidates_generated

    @property
    def full_similarities(self) -> int:
        return self.stats.full_similarities

    @property
    def operations(self) -> int:
        return self.stats.operations

    @property
    def throughput(self) -> float:
        """Vectors processed per second (0 when the run took no time)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.stats.vectors_processed / self.elapsed_seconds

    def as_row(self) -> dict[str, object]:
        """Flat dictionary used by the table renderers."""
        return {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "theta": self.threshold,
            "lambda": self.decay,
            "tau": round(self.horizon, 4),
            "time_s": round(self.elapsed_seconds, 4),
            "pairs": self.pairs,
            "entries": self.entries_traversed,
            "candidates": self.candidates_generated,
            "full_sims": self.full_similarities,
            "completed": self.completed,
        }
