"""Per-run metrics collected by the benchmark harness."""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from repro.core.results import JoinStatistics
from repro.core.similarity import time_horizon

__all__ = ["LatencyStats", "RunMetrics"]


class LatencyStats:
    """Per-item latency percentiles over a bounded sliding window.

    The benchmark runner, the ``sssj profile`` table and the service's
    ``/stats`` endpoint all report p50/p95/p99 per-item latency through
    this one class.  Samples are kept in a fixed-size window (newest
    ``window`` items) so a long-running service can record latencies
    forever with bounded memory; ``count`` still tracks the lifetime
    total and ``window_dropped`` how many samples aged out of the
    window, so a saturated window is visible rather than silently
    biased.  Percentiles use the nearest-rank method on the retained
    window — deterministic and dependency-free — except below three
    samples, where nearest-rank collapses every percentile onto one
    sample (p50 of two samples was the *smaller* one); tiny windows
    interpolate linearly instead.

    Thread-safe: the service records from its worker thread while the
    ``stats`` endpoint summarises from server handler threads.
    """

    def __init__(self, window: int = 65536) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._samples: deque[float] = deque(maxlen=window)
        self._lock = threading.Lock()
        self.count = 0
        self.total_seconds = 0.0
        self.window_dropped = 0

    def record(self, seconds: float) -> None:
        """Record one per-item latency measured in seconds."""
        with self._lock:
            if len(self._samples) == self.window:
                self.window_dropped += 1
            self._samples.append(seconds)
            self.count += 1
            self.total_seconds += seconds

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    @staticmethod
    def _rank(ordered: list[float], p: float) -> float:
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        n = len(ordered)
        if n < 3:
            # Nearest-rank degenerates at tiny n (p50 of two samples is
            # the smaller one); interpolate linearly instead.
            position = (n - 1) * p / 100.0
            low = int(position)
            high = min(low + 1, n - 1)
            fraction = position - low
            return ordered[low] + (ordered[high] - ordered[low]) * fraction
        rank = max(1, -(-n * p // 100))  # ceil without floats
        return ordered[int(rank) - 1]

    def percentile(self, p: float) -> float:
        """``p``-th percentile (in seconds) of the retained window.

        Nearest-rank for n ≥ 3, linear interpolation below that.
        Returns 0.0 when no samples have been recorded.
        """
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return 0.0
        return self._rank(ordered, p)

    def summary(self) -> dict[str, float]:
        """The p50/p95/p99 row (milliseconds) shared by every consumer."""
        with self._lock:
            ordered = sorted(self._samples)
            count = self.count
            total_seconds = self.total_seconds
            window_dropped = self.window_dropped
        mean_s = total_seconds / count if count else 0.0
        return {
            "count": count,
            "window_dropped": window_dropped,
            "mean_ms": round(mean_s * 1e3, 4),
            "p50_ms": round(self._rank(ordered, 50) * 1e3, 4) if ordered else 0.0,
            "p95_ms": round(self._rank(ordered, 95) * 1e3, 4) if ordered else 0.0,
            "p99_ms": round(self._rank(ordered, 99) * 1e3, 4) if ordered else 0.0,
            "max_ms": round(ordered[-1] * 1e3, 4) if ordered else 0.0,
        }


@dataclass
class RunMetrics:
    """Everything measured for one (algorithm, dataset, θ, λ) run.

    ``completed`` is false when the run exceeded its operation or wall-clock
    budget; incomplete runs keep whatever counters they accumulated before
    being aborted (mirroring the paper's Table 2 treatment of timed-out
    configurations).
    """

    algorithm: str
    dataset: str
    threshold: float
    decay: float
    num_vectors: int
    elapsed_seconds: float = 0.0
    pairs: int = 0
    completed: bool = True
    abort_reason: str = ""
    stats: JoinStatistics = field(default_factory=JoinStatistics)
    latency: LatencyStats = field(default_factory=LatencyStats)
    #: One-time backend warm-up (JIT compilation for the compiled tier),
    #: paid before the run clock starts and therefore *not* part of
    #: ``elapsed_seconds``.
    warmup_seconds: float = 0.0

    @property
    def horizon(self) -> float:
        """Time horizon ``τ`` of the configuration."""
        return time_horizon(self.threshold, self.decay)

    @property
    def entries_traversed(self) -> int:
        return self.stats.entries_traversed

    @property
    def candidates_generated(self) -> int:
        return self.stats.candidates_generated

    @property
    def full_similarities(self) -> int:
        return self.stats.full_similarities

    @property
    def operations(self) -> int:
        return self.stats.operations

    @property
    def throughput(self) -> float:
        """Vectors processed per second (0 when the run took no time)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.stats.vectors_processed / self.elapsed_seconds

    def latency_row(self) -> dict[str, object]:
        """Per-item latency percentile row (``sssj profile``, service stats)."""
        return dict(self.latency.summary())

    def as_row(self) -> dict[str, object]:
        """Flat dictionary used by the table renderers."""
        return {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "theta": self.threshold,
            "lambda": self.decay,
            "tau": round(self.horizon, 4),
            "time_s": round(self.elapsed_seconds, 4),
            "pairs": self.pairs,
            "entries": self.entries_traversed,
            "candidates": self.candidates_generated,
            "full_sims": self.full_similarities,
            "completed": self.completed,
        }
