"""Terminal (ASCII) rendering of the figure experiments.

The evaluation figures of the paper are line charts (time vs θ, time vs λ,
entries vs θ, time vs τ).  The benchmark harness reports them as tables;
this module additionally renders them as small ASCII charts so that
``sssj experiment figure7 --plot`` and the benchmark logs convey the shape
of each curve without any plotting dependency.

Charts are deliberately coarse — they exist to show monotonicity and
crossovers, not precise values (the tables carry those).
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

__all__ = ["ascii_chart", "chart_from_series"]

_MARKERS = "ox+*#@%&"


def _scale(value: float, low: float, high: float, steps: int) -> int:
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(steps - 1, max(0, int(round(position * (steps - 1)))))


def ascii_chart(series: Mapping[str, Sequence[tuple[float, float]]], *,
                width: int = 60, height: int = 16, title: str = "",
                log_x: bool = False, x_label: str = "x", y_label: str = "y") -> str:
    """Render one or more ``label -> [(x, y), ...]`` series as an ASCII chart.

    Parameters
    ----------
    series:
        Mapping from series label to its points.  Points need not be sorted.
    width, height:
        Plot area size in characters.
    log_x:
        Plot ``log10(x)`` on the horizontal axis (useful for the λ sweeps).
    """
    points = [(x, y) for values in series.values() for x, y in values
              if math.isfinite(x) and math.isfinite(y)]
    if not points:
        return f"{title}\n(no data)" if title else "(no data)"

    def transform_x(value: float) -> float:
        return math.log10(value) if log_x and value > 0 else value

    xs = [transform_x(x) for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)

    grid = [[" "] * width for _ in range(height)]
    for index, (label, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in values:
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            column = _scale(transform_x(x), x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            grid[row][column] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_high:.3g}"
    bottom_label = f"{y_low:.3g}"
    gutter = max(len(top_label), len(bottom_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(gutter)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix}|{''.join(row)}")
    axis = "-" * width
    lines.append(f"{' ' * gutter}+{axis}")
    x_low_text = f"{(10 ** x_low if log_x else x_low):.3g}"
    x_high_text = f"{(10 ** x_high if log_x else x_high):.3g}"
    footer = f"{x_low_text} {x_label} {x_high_text}".center(width)
    lines.append(f"{' ' * gutter} {footer}")
    legend = "   ".join(f"{_MARKERS[i % len(_MARKERS)]} {label}"
                        for i, label in enumerate(series))
    lines.append(f"{' ' * gutter} legend: {legend}  ({y_label} on the vertical axis)")
    return "\n".join(lines)


def chart_from_series(rows: Sequence[dict], *, group: str, x: str, y: str,
                      title: str = "", log_x: bool = False,
                      width: int = 60, height: int = 16) -> str:
    """Build a chart directly from experiment rows (see ``tables.series_by``)."""
    from repro.bench.tables import series_by

    series = series_by(rows, group=group, x=x, y=y)
    labelled = {str(label): points for label, points in series.items()}
    return ascii_chart(labelled, title=title, log_x=log_x, width=width, height=height,
                       x_label=x, y_label=y)
