"""Exporting benchmark results to CSV, JSON and Markdown.

The experiment functions return plain rows; this module turns them into
artefacts: CSV/JSON files for further analysis (e.g. plotting the figures
with matplotlib outside this repository) and a Markdown report in the style
of ``EXPERIMENTS.md`` that pairs each reproduced table/figure with the
paper's qualitative finding.
"""

from __future__ import annotations

import csv
import json
import subprocess
from collections.abc import Iterable, Sequence
from pathlib import Path
from typing import Any

from repro.bench.experiments import ExperimentResult
from repro.bench.metrics import RunMetrics

__all__ = [
    "rows_to_csv",
    "rows_to_json",
    "metrics_to_csv",
    "experiment_to_markdown",
    "write_markdown_report",
    "git_revision",
    "backend_versions",
    "bench_micro_benchmarks",
    "write_bench_micro",
]

#: Schema version of the ``BENCH_micro.json`` artifact.  Version 2 holds a
#: ``benchmarks`` map (one record per gate, so the STR and INV gates and
#: the 50k scaling gate share one artifact) and allows an optional
#: per-backend ``stages`` block with the scan/filter/verify/maintenance
#: wall-clock breakdown from :class:`repro.backends.profiling.ProfilingKernel`.
BENCH_MICRO_SCHEMA = 2


def git_revision(default: str = "unknown") -> str:
    """Current git commit hash, or ``default`` outside a repository."""
    try:
        output = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10, check=False,
        )
    except (OSError, subprocess.SubprocessError):  # pragma: no cover - env dependent
        return default
    revision = output.stdout.strip()
    return revision if output.returncode == 0 and revision else default


def backend_versions() -> dict[str, str]:
    """Versions of the optional compute-backend dependencies present here.

    Stamped into benchmark artifacts so a measured speedup can be traced
    to the numpy/numba build that produced it (compiled-tier numbers from
    different numba releases are not interchangeable).
    """
    versions: dict[str, str] = {}
    for module_name in ("numpy", "numba"):
        try:
            module = __import__(module_name)
        except ImportError:
            continue
        versions[module_name] = str(getattr(module, "__version__", "unknown"))
    return versions


def bench_micro_benchmarks(record: dict[str, Any]) -> dict[str, dict[str, Any]]:
    """The ``benchmark name → record`` map of an artifact, any schema.

    Schema 1 artifacts held a single benchmark at the top level; they are
    presented as a one-entry map so consumers (the regression checker,
    tooling reading the committed baseline) need no version branches.
    """
    benchmarks = record.get("benchmarks")
    if isinstance(benchmarks, dict):
        return benchmarks
    name = record.get("benchmark")
    return {str(name): record} if name else {}


def write_bench_micro(path: str | Path, *, benchmark: str,
                      config: dict[str, Any],
                      backends: dict[str, dict[str, Any]],
                      derived: dict[str, Any] | None = None) -> Path:
    """Write (or extend) the machine-readable micro-benchmark artifact.

    ``backends`` maps backend name → measured values (elapsed seconds,
    throughput, operation counters, optionally a per-stage ``stages``
    timing block); ``config`` records the workload (profile, size, θ, λ)
    and ``derived`` any cross-backend aggregates (e.g. the speedup).  The
    git revision and a schema version are stamped in so the perf
    trajectory can be tracked across PRs.

    When ``path`` already holds an artifact from the same run (or an
    older schema-1 record), the new benchmark is merged into its
    ``benchmarks`` map, so the separate gate tests accumulate into one
    file.
    """
    path = Path(path)
    benchmarks: dict[str, Any] = {}
    if path.exists():
        try:
            with open(path, "r", encoding="utf-8") as handle:
                benchmarks = dict(bench_micro_benchmarks(json.load(handle)))
        except (OSError, ValueError):  # pragma: no cover - corrupt artifact
            benchmarks = {}
    revision = git_revision()
    entry: dict[str, Any] = {
        "benchmark": benchmark,
        # Stamped per entry as well: merging into an existing artifact
        # must not mislabel records measured at an older revision.
        "git_sha": revision,
        "config": dict(config),
        # Outside "config" on purpose: the workload-mismatch guard must
        # not refuse to compare records from machines with different
        # library builds — that difference is what the ratios divide out.
        "versions": backend_versions(),
        "backends": {name: dict(values) for name, values in backends.items()},
    }
    if derived:
        entry["derived"] = dict(derived)
    benchmarks[benchmark] = entry
    record: dict[str, Any] = {
        "schema": BENCH_MICRO_SCHEMA,
        "git_sha": revision,
        "benchmarks": benchmarks,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def rows_to_csv(rows: Sequence[dict[str, Any]], path: str | Path) -> int:
    """Write rows to a CSV file; returns the number of data rows written."""
    path = Path(path)
    if not rows:
        path.write_text("")
        return 0
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return len(rows)


def rows_to_json(rows: Sequence[dict[str, Any]], path: str | Path) -> int:
    """Write rows to a JSON file (a list of objects)."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(list(rows), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(rows)


def metrics_to_csv(metrics: Iterable[RunMetrics], path: str | Path) -> int:
    """Write a collection of :class:`RunMetrics` to CSV."""
    return rows_to_csv([m.as_row() for m in metrics], path)


def _markdown_table(rows: Sequence[dict[str, Any]]) -> str:
    if not rows:
        return "_(no rows)_"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    lines = ["| " + " | ".join(columns) + " |",
             "| " + " | ".join("---" for _ in columns) + " |"]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                value = f"{value:.4g}"
            cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def experiment_to_markdown(result: ExperimentResult, *, max_rows: int | None = None) -> str:
    """Render one experiment as a Markdown section."""
    rows = result.rows if max_rows is None else result.rows[:max_rows]
    parts = [f"### {result.experiment_id}: {result.title}", ""]
    if result.notes:
        parts.extend([result.notes, ""])
    parts.append(_markdown_table(rows))
    if max_rows is not None and len(result.rows) > max_rows:
        parts.append("")
        parts.append(f"_({len(result.rows) - max_rows} more rows omitted)_")
    parts.append("")
    return "\n".join(parts)


def write_markdown_report(results: Sequence[ExperimentResult], path: str | Path, *,
                          title: str = "Reproduced experiments",
                          max_rows: int | None = None) -> Path:
    """Write a Markdown report covering every supplied experiment."""
    path = Path(path)
    sections = [f"# {title}", ""]
    for result in results:
        sections.append(experiment_to_markdown(result, max_rows=max_rows))
    path.write_text("\n".join(sections), encoding="utf-8")
    return path
