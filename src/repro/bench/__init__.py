"""Benchmark harness: experiment configs, runner, metrics and table renderers."""

from repro.bench.config import (
    DATASETS,
    FRAMEWORKS,
    INDEXES,
    LAMBDA_GRID,
    THETA_GRID,
    ExperimentScale,
    default_scale,
)
from repro.bench.experiments import ALL_EXPERIMENTS, ExperimentResult, run_experiment
from repro.bench.export import (
    experiment_to_markdown,
    metrics_to_csv,
    rows_to_csv,
    rows_to_json,
    write_markdown_report,
)
from repro.bench.metrics import RunMetrics
from repro.bench.regression import LinearFit, fit_line
from repro.bench.runner import clear_corpus_cache, corpus_for, run_algorithm, sweep
from repro.bench.tables import pivot, render_table, series_by

__all__ = [
    "THETA_GRID",
    "LAMBDA_GRID",
    "FRAMEWORKS",
    "INDEXES",
    "DATASETS",
    "ExperimentScale",
    "default_scale",
    "RunMetrics",
    "run_algorithm",
    "sweep",
    "corpus_for",
    "clear_corpus_cache",
    "render_table",
    "pivot",
    "series_by",
    "LinearFit",
    "fit_line",
    "ExperimentResult",
    "ALL_EXPERIMENTS",
    "run_experiment",
    "rows_to_csv",
    "rows_to_json",
    "metrics_to_csv",
    "experiment_to_markdown",
    "write_markdown_report",
]
