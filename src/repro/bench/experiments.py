"""One function per table/figure of the paper's evaluation (Section 7).

Every function returns an :class:`ExperimentResult` whose ``rows`` hold the
same quantities the paper plots, so the benchmark modules under
``benchmarks/`` only need to execute the function and print the rendered
table.  The experiments run on the synthetic dataset profiles of
:mod:`repro.datasets.profiles`; sizes and grids are controlled by an
:class:`~repro.bench.config.ExperimentScale`.

Correspondence with the paper:

=============  ===============================================================
``table1``     dataset statistics (Table 1)
``table2``     fraction of (θ, λ) configurations finishing within budget
``figure2``    ratio of index entries traversed, STR vs MB, as a function of τ
``figure3``    MB vs STR running time on the RCV1 profile
``figure4``    MB vs STR running time on the WebSpam profile
``figure5``    STR running time by index on the RCV1 profile
``figure6``    STR entries traversed by index on the Tweets profile
``figure7``    STR-L2 running time as a function of λ (all profiles)
``figure8``    STR-L2 running time as a function of θ (all profiles)
``figure9``    linear regression of STR-L2 running time on the horizon τ
``ablation_bounds``     extra: bound-family ablation (INV/AP/L2AP/L2 under STR)
``ablation_baseline``   extra: index pruning vs the exact sliding-window join
=============  ===============================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.baselines.sliding_window import SlidingWindowJoin
from repro.bench.config import DATASETS, INDEXES, ExperimentScale, default_scale
from repro.bench.metrics import RunMetrics
from repro.bench.regression import fit_line
from repro.bench.runner import corpus_for, run_algorithm, sweep
from repro.bench.tables import render_table
from repro.core.similarity import time_horizon
from repro.datasets.profiles import get_profile
from repro.datasets.stats import dataset_statistics

__all__ = [
    "ExperimentResult",
    "table1",
    "table2",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "ablation_bounds",
    "ablation_baseline",
    "ALL_EXPERIMENTS",
    "run_experiment",
]


@dataclass
class ExperimentResult:
    """Output of one reproduced table or figure."""

    experiment_id: str
    title: str
    rows: list[dict[str, Any]]
    notes: str = ""
    extra: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """Aligned text rendering (what the benchmark modules print)."""
        parts = [render_table(self.rows, title=f"{self.experiment_id}: {self.title}")]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)


# ---------------------------------------------------------------------------
# Table 1 — dataset statistics
# ---------------------------------------------------------------------------


def table1(scale: ExperimentScale | None = None) -> ExperimentResult:
    """Dataset statistics of the four synthetic profiles (paper Table 1)."""
    scale = scale or default_scale()
    rows = []
    for dataset in DATASETS:
        profile = get_profile(dataset)
        vectors = corpus_for(dataset, scale.vectors_for(dataset), seed=scale.seed)
        stats = dataset_statistics(vectors, name=dataset,
                                   timestamp_type=profile.arrival_process)
        rows.append(stats.as_row())
    return ExperimentResult(
        experiment_id="table1",
        title="Dataset statistics (synthetic profiles mirroring paper Table 1)",
        rows=rows,
        notes="Densities span two orders of magnitude, as in the paper: "
              "webspam is the densest profile and tweets the sparsest.",
    )


# ---------------------------------------------------------------------------
# Table 2 — fraction of configurations that finish within budget
# ---------------------------------------------------------------------------


def table2(scale: ExperimentScale | None = None, *,
           operation_budget: int | None = None) -> ExperimentResult:
    """Fraction of (θ, λ) configurations finishing within the budget (Table 2).

    The paper aborts configurations after a 3-hour timeout; the reproduction
    uses a machine-independent operation budget proportional to the corpus
    size instead.  Values closer to 1.00 are better.
    """
    scale = scale or default_scale()
    rows: list[dict[str, Any]] = []
    for dataset in DATASETS:
        num_vectors = scale.vectors_for(dataset)
        vectors = corpus_for(dataset, num_vectors, seed=scale.seed)
        total_nnz = sum(len(v) for v in vectors)
        budget = operation_budget if operation_budget is not None else 40 * total_nnz
        row: dict[str, Any] = {"dataset": dataset, "budget_ops": budget}
        for framework in ("MB", "STR"):
            for index in INDEXES:
                algorithm = f"{framework}-{index}"
                finished = 0
                total = 0
                for threshold in scale.thetas:
                    for decay in scale.decays:
                        total += 1
                        metrics = run_algorithm(
                            algorithm, vectors, threshold, decay,
                            dataset=dataset, operation_budget=budget,
                        )
                        finished += int(metrics.completed)
                row[algorithm] = round(finished / total, 2) if total else 0.0
        rows.append(row)
    return ExperimentResult(
        experiment_id="table2",
        title="Fraction of (θ, λ) configurations finishing within the operation budget",
        rows=rows,
        notes="Paper Table 2: MB degrades on the larger/sparser datasets while "
              "STR completes (almost) everywhere.",
    )


# ---------------------------------------------------------------------------
# Figure 2 — entries traversed, STR vs MB, as a function of τ
# ---------------------------------------------------------------------------


def figure2(scale: ExperimentScale | None = None) -> ExperimentResult:
    """Ratio of index entries traversed during CG by STR vs MB (Figure 2)."""
    scale = scale or default_scale()
    rows: list[dict[str, Any]] = []
    for dataset in ("webspam", "rcv1"):
        vectors = corpus_for(dataset, scale.vectors_for(dataset), seed=scale.seed)
        for threshold in scale.thetas:
            for decay in scale.decays:
                str_run = run_algorithm("STR-L2", vectors, threshold, decay, dataset=dataset)
                mb_run = run_algorithm("MB-L2", vectors, threshold, decay, dataset=dataset)
                ratio = (str_run.entries_traversed / mb_run.entries_traversed
                         if mb_run.entries_traversed else float("nan"))
                rows.append({
                    "dataset": dataset,
                    "theta": threshold,
                    "lambda": decay,
                    "tau": round(time_horizon(threshold, decay), 4),
                    "entries_STR": str_run.entries_traversed,
                    "entries_MB": mb_run.entries_traversed,
                    "ratio": round(ratio, 3),
                })
    return ExperimentResult(
        experiment_id="figure2",
        title="Ratio of index entries traversed during CG, STR / MB (L2 index)",
        rows=rows,
        notes="Paper Figure 2: for large horizons τ STR traverses roughly 65% of "
              "the entries MB does; for small τ the ratio approaches (or exceeds) 1.",
    )


# ---------------------------------------------------------------------------
# Figures 3 & 4 — MB vs STR running time
# ---------------------------------------------------------------------------


def _mb_vs_str(dataset: str, scale: ExperimentScale) -> list[dict[str, Any]]:
    results = sweep(
        [f"{framework}-{index}" for index in INDEXES for framework in ("MB", "STR")],
        [dataset], scale,
    )
    rows = []
    for metrics in results:
        framework, index = metrics.algorithm.split("-", maxsplit=1)
        rows.append({
            "dataset": dataset,
            "indexing": index,
            "algorithm": framework,
            "theta": metrics.threshold,
            "lambda": metrics.decay,
            "time_s": round(metrics.elapsed_seconds, 4),
            "entries": metrics.entries_traversed,
            "pairs": metrics.pairs,
        })
    return rows


def figure3(scale: ExperimentScale | None = None) -> ExperimentResult:
    """MB vs STR running time on the RCV1 profile (Figure 3)."""
    scale = scale or default_scale()
    rows = _mb_vs_str("rcv1", scale)
    return ExperimentResult(
        experiment_id="figure3",
        title="Time of MB vs STR as a function of θ, RCV1 profile",
        rows=rows,
        notes="Paper Figure 3: on RCV1 STR is faster than MB in most "
              "configurations, with up to ~4x gains at low θ.",
    )


def figure4(scale: ExperimentScale | None = None) -> ExperimentResult:
    """MB vs STR running time on the WebSpam profile (Figure 4)."""
    scale = scale or default_scale()
    rows = _mb_vs_str("webspam", scale)
    return ExperimentResult(
        experiment_id="figure4",
        title="Time of MB vs STR as a function of θ, WebSpam profile",
        rows=rows,
        notes="Paper Figure 4: the dense WebSpam corpus is the one setting where "
              "MB can beat STR, especially at larger decay factors.",
    )


# ---------------------------------------------------------------------------
# Figure 5 — STR running time by index (RCV1)
# ---------------------------------------------------------------------------


def figure5(scale: ExperimentScale | None = None) -> ExperimentResult:
    """STR running time by index on the RCV1 profile (Figure 5)."""
    scale = scale or default_scale()
    results = sweep([f"STR-{index}" for index in INDEXES], ["rcv1"], scale)
    rows = [{
        "indexing": metrics.algorithm.split("-", 1)[1],
        "theta": metrics.threshold,
        "lambda": metrics.decay,
        "time_s": round(metrics.elapsed_seconds, 4),
        "entries": metrics.entries_traversed,
        "candidates": metrics.candidates_generated,
        "full_sims": metrics.full_similarities,
        "reindexings": metrics.stats.reindexings,
    } for metrics in results]
    return ExperimentResult(
        experiment_id="figure5",
        title="Time of STR by index as a function of θ, RCV1 profile",
        rows=rows,
        notes="Paper Figure 5: L2 is almost always the fastest; INV is competitive "
              "only at short horizons; L2AP pays for re-indexing at large λ.",
    )


# ---------------------------------------------------------------------------
# Figure 6 — STR entries traversed by index (Tweets)
# ---------------------------------------------------------------------------


def figure6(scale: ExperimentScale | None = None) -> ExperimentResult:
    """STR entries traversed by index on the Tweets profile (Figure 6)."""
    scale = scale or default_scale()
    results = sweep([f"STR-{index}" for index in INDEXES], ["tweets"], scale)
    rows = [{
        "indexing": metrics.algorithm.split("-", 1)[1],
        "theta": metrics.threshold,
        "lambda": metrics.decay,
        "entries": metrics.entries_traversed,
        "candidates": metrics.candidates_generated,
        "full_sims": metrics.full_similarities,
        "time_s": round(metrics.elapsed_seconds, 4),
    } for metrics in results]
    return ExperimentResult(
        experiment_id="figure6",
        title="Entries traversed by STR by index as a function of θ, Tweets profile",
        rows=rows,
        notes="Paper Figure 6: INV traverses the most entries; L2 loses little "
              "pruning power despite dropping the AP bounds; L2AP traverses more "
              "as the horizon shrinks because its lists are no longer time-ordered.",
    )


# ---------------------------------------------------------------------------
# Figures 7, 8, 9 — STR-L2 across datasets and parameters
# ---------------------------------------------------------------------------


def _str_l2_sweep(scale: ExperimentScale) -> list[RunMetrics]:
    return sweep(["STR-L2"], DATASETS, scale)


def _l2_rows(results: list[RunMetrics]) -> list[dict[str, Any]]:
    return [{
        "dataset": metrics.dataset,
        "theta": metrics.threshold,
        "lambda": metrics.decay,
        "tau": round(metrics.horizon, 4),
        "time_s": round(metrics.elapsed_seconds, 4),
        "entries": metrics.entries_traversed,
        "pairs": metrics.pairs,
    } for metrics in results]


def figure7(scale: ExperimentScale | None = None) -> ExperimentResult:
    """STR-L2 running time as a function of λ, per θ, all profiles (Figure 7)."""
    scale = scale or default_scale()
    rows = _l2_rows(_str_l2_sweep(scale))
    return ExperimentResult(
        experiment_id="figure7",
        title="Time of STR-L2 as a function of λ for different θ",
        rows=rows,
        notes="Paper Figure 7: increasing the decay factor decreases the running "
              "time on every dataset, most markedly at low thresholds.",
    )


def figure8(scale: ExperimentScale | None = None) -> ExperimentResult:
    """STR-L2 running time as a function of θ, per λ, all profiles (Figure 8)."""
    scale = scale or default_scale()
    rows = _l2_rows(_str_l2_sweep(scale))
    return ExperimentResult(
        experiment_id="figure8",
        title="Time of STR-L2 as a function of θ for different λ",
        rows=rows,
        notes="Paper Figure 8: same runs viewed along the other axis — increasing "
              "the threshold decreases the running time, flattening out at high λ.",
    )


def figure9(scale: ExperimentScale | None = None) -> ExperimentResult:
    """Linear regression of STR-L2 running time on the horizon τ (Figure 9)."""
    scale = scale or default_scale()
    results = _str_l2_sweep(scale)
    rows: list[dict[str, Any]] = []
    fits: dict[str, Any] = {}
    for dataset in DATASETS:
        points = [(metrics.horizon, metrics.elapsed_seconds)
                  for metrics in results if metrics.dataset == dataset]
        # Horizons longer than the stream itself all behave identically (the
        # whole stream fits in the window), so cap the regressor at the
        # stream's time span; the paper's corpora are long enough that this
        # never matters there.
        corpus = corpus_for(dataset, scale.vectors_for(dataset), seed=scale.seed)
        span = corpus[-1].timestamp - corpus[0].timestamp if corpus else 0.0
        xs = [min(tau, span) for tau, _ in points]
        ys = [seconds for _, seconds in points]
        fit = fit_line(xs, ys)
        fits[dataset] = fit
        rows.append({
            "dataset": dataset,
            "slope_s_per_tau": round(fit.slope, 6),
            "intercept_s": round(fit.intercept, 4),
            "r_squared": round(fit.r_squared, 3),
            "points": fit.num_points,
        })
    return ExperimentResult(
        experiment_id="figure9",
        title="Linear regression of STR-L2 time on the horizon τ",
        rows=rows,
        notes="Paper Figure 9: time grows roughly linearly with τ; the dense "
              "WebSpam profile has a markedly larger slope than the others.",
        extra={"fits": fits},
    )


# ---------------------------------------------------------------------------
# Ablations (design choices called out in Sections 5.4 and 6)
# ---------------------------------------------------------------------------


def ablation_bounds(scale: ExperimentScale | None = None) -> ExperimentResult:
    """Bound-family ablation: INV vs AP vs L2AP vs L2 under STR."""
    scale = scale or default_scale()
    results = sweep(["STR-INV", "STR-AP", "STR-L2AP", "STR-L2"], ["rcv1", "tweets"], scale,
                    thetas=(0.5, 0.7, 0.9), decays=(1e-3, 1e-2, 1e-1))
    rows = [{
        "dataset": metrics.dataset,
        "indexing": metrics.algorithm.split("-", 1)[1],
        "theta": metrics.threshold,
        "lambda": metrics.decay,
        "time_s": round(metrics.elapsed_seconds, 4),
        "entries": metrics.entries_traversed,
        "candidates": metrics.candidates_generated,
        "full_sims": metrics.full_similarities,
        "reindexings": metrics.stats.reindexings,
        "index_size": metrics.stats.max_index_size,
    } for metrics in results]
    return ExperimentResult(
        experiment_id="ablation_bounds",
        title="Ablation: which bound family earns its keep in the streaming setting",
        rows=rows,
        notes="The ℓ₂ bounds provide nearly all the pruning; adding the AP bounds "
              "(AP, L2AP) costs re-indexing and unordered posting lists.",
    )


def ablation_baseline(scale: ExperimentScale | None = None) -> ExperimentResult:
    """Index pruning vs the exact sliding-window baseline."""
    scale = scale or default_scale()
    rows: list[dict[str, Any]] = []
    for dataset in ("rcv1", "tweets"):
        vectors = corpus_for(dataset, scale.vectors_for(dataset), seed=scale.seed)
        for threshold, decay in ((0.5, 1e-2), (0.7, 1e-2), (0.9, 1e-1)):
            start = time.perf_counter()
            window = SlidingWindowJoin(threshold, decay)
            baseline_pairs = sum(len(window.process(vector)) for vector in vectors)
            baseline_seconds = time.perf_counter() - start
            l2_run = run_algorithm("STR-L2", vectors, threshold, decay, dataset=dataset)
            rows.append({
                "dataset": dataset,
                "theta": threshold,
                "lambda": decay,
                "pairs": l2_run.pairs,
                "baseline_pairs": baseline_pairs,
                "baseline_time_s": round(baseline_seconds, 4),
                "str_l2_time_s": round(l2_run.elapsed_seconds, 4),
                "baseline_sims": window.stats.full_similarities,
                "str_l2_sims": l2_run.full_similarities,
            })
    return ExperimentResult(
        experiment_id="ablation_baseline",
        title="Ablation: STR-L2 vs the exact sliding-window join (no index pruning)",
        rows=rows,
        notes="Both produce identical pair sets; the index prunes most of the "
              "full similarity computations the naive window join performs.",
    )


#: Registry used by the CLI (`sssj experiment <id>`) and the benchmark suite.
ALL_EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "ablation_bounds": ablation_bounds,
    "ablation_baseline": ablation_baseline,
}


def run_experiment(experiment_id: str,
                   scale: ExperimentScale | None = None) -> ExperimentResult:
    """Run one of the registered experiments by identifier."""
    try:
        factory = ALL_EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(ALL_EXPERIMENTS)}"
        ) from None
    return factory(scale)
