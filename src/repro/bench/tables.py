"""Plain-text rendering of benchmark results.

The harness reports every table and figure of the paper as rows of plain
dictionaries; this module turns them into aligned text tables (for the
terminal and for ``EXPERIMENTS.md``) and provides the small pivot helpers
the figure experiments need (e.g. "time as a function of θ, one series per
index").
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

__all__ = ["render_table", "pivot", "series_by"]


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(rows: Sequence[dict[str, Any]], *, columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    table = [[_format_cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[i]) for line in table))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for line in table:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def pivot(rows: Iterable[dict[str, Any]], *, index: str, column: str,
          value: str) -> list[dict[str, Any]]:
    """Pivot rows into a wide table: one row per ``index``, one column per ``column``."""
    table: dict[Any, dict[str, Any]] = {}
    column_order: list[Any] = []
    for row in rows:
        key = row[index]
        bucket = table.setdefault(key, {index: key})
        column_key = row[column]
        if column_key not in column_order:
            column_order.append(column_key)
        bucket[str(column_key)] = row[value]
    return [table[key] for key in table]


def series_by(rows: Iterable[dict[str, Any]], *, group: str, x: str,
              y: str) -> dict[Any, list[tuple[Any, Any]]]:
    """Group rows into series ``{group value: [(x, y), ...]}`` (figure data)."""
    series: dict[Any, list[tuple[Any, Any]]] = {}
    for row in rows:
        series.setdefault(row[group], []).append((row[x], row[y]))
    for points in series.values():
        points.sort(key=lambda point: point[0])
    return series
