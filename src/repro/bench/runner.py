"""Execution engine of the benchmark harness.

The runner knows how to

* generate (and cache) a corpus for a dataset profile,
* run one algorithm configuration over a corpus, collecting a
  :class:`~repro.bench.metrics.RunMetrics`, optionally aborting when an
  operation budget is exceeded (the machine-independent analogue of the
  paper's 3-hour timeout), and
* sweep whole parameter grids.

Every experiment module in :mod:`repro.bench.experiments` is a thin layer
over these primitives.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence

from repro.backends import get_backend, warmup_backend
from repro.bench.config import ExperimentScale
from repro.bench.metrics import RunMetrics
from repro.core.join import create_join
from repro.core.results import JoinStatistics
from repro.core.vector import SparseVector
from repro.datasets.generator import generate_profile_corpus
from repro.datasets.profiles import get_profile

__all__ = ["corpus_for", "clear_corpus_cache", "run_algorithm", "sweep"]

# Corpora are expensive to generate relative to small runs, so the harness
# memoises them per (profile, count, seed).
_CORPUS_CACHE: dict[tuple[str, int, int], list[SparseVector]] = {}


def corpus_for(dataset: str, num_vectors: int, *, seed: int = 42) -> list[SparseVector]:
    """Return (and cache) the corpus for a dataset profile."""
    key = (dataset.lower(), num_vectors, seed)
    corpus = _CORPUS_CACHE.get(key)
    if corpus is None:
        corpus = generate_profile_corpus(dataset, num_vectors=num_vectors, seed=seed)
        _CORPUS_CACHE[key] = corpus
    return corpus


def clear_corpus_cache() -> None:
    """Drop every cached corpus (used by tests)."""
    _CORPUS_CACHE.clear()


def run_algorithm(
    algorithm: str,
    vectors: Sequence[SparseVector],
    threshold: float,
    decay: float,
    *,
    dataset: str = "dataset",
    operation_budget: int | None = None,
    time_budget: float | None = None,
    backend: str | None = None,
    workers: int | None = None,
    shard_executor: str = "process",
    approx: str | None = None,
    fault_plan=None,
) -> RunMetrics:
    """Run one algorithm configuration over ``vectors`` and measure it.

    The run is aborted (``completed=False``) as soon as the aggregate
    operation count exceeds ``operation_budget`` or the elapsed wall-clock
    time exceeds ``time_budget`` seconds.

    ``backend`` selects the compute backend; when given explicitly it is
    recorded in the metrics' algorithm label (``"STR-L2[numpy]"``) so
    side-by-side backend tables stay readable.  ``workers`` switches the
    run to the sharded parallel engine (:mod:`repro.shard`) with that many
    shards (``shard_executor`` picks ``"process"`` or ``"serial"``); the
    label then carries a ``×N`` worker suffix.  ``approx`` enables the
    approximate prefilter tier (:mod:`repro.approx`); the canonical spec
    is appended to the label (``"STR-L2AP[numpy]~minhash:16x2"``) so
    exact and approximate rows are never confused in a table.
    ``fault_plan`` injects worker faults into the sharded engine
    (:mod:`repro.faults`) — chaos runs must still produce bitwise-exact
    results, which is precisely what the chaos gate checks.

    Per-item ``process()`` latency is recorded into ``metrics.latency``,
    so ``metrics.latency_row()`` yields the same p50/p95/p99 summary the
    ``sssj profile`` table and the service ``stats`` endpoint report.
    """
    stats = JoinStatistics()
    join = create_join(algorithm, threshold, decay, stats=stats,
                       backend=backend, workers=workers,
                       shard_executor=shard_executor, approx=approx,
                       fault_plan=fault_plan)
    if workers is not None:
        label = f"{algorithm}[{join.backend_name}x{workers}]"
    elif backend is None:
        label = algorithm
    else:
        # Resolve "auto" so side-by-side tables name the actual backend.
        label = f"{algorithm}[{get_backend(backend).name}]"
    if approx is not None:
        label = f"{label}~{join.approx}"
    metrics = RunMetrics(
        algorithm=label,
        dataset=dataset,
        threshold=threshold,
        decay=decay,
        num_vectors=len(vectors),
        stats=stats,
    )
    pairs = 0
    latency = metrics.latency
    # Prime one-time backend machinery (the compiled tier's JIT
    # compilation) before the clock starts: elapsed_seconds measures the
    # scans only, and the warm-up cost is reported on its own field.
    metrics.warmup_seconds = warmup_backend(backend)
    start = time.perf_counter()
    try:
        for processed, vector in enumerate(vectors, start=1):
            item_start = time.perf_counter()
            pairs += len(join.process(vector))
            latency.record(time.perf_counter() - item_start)
            if operation_budget is not None and stats.operations > operation_budget:
                metrics.completed = False
                metrics.abort_reason = f"operation budget exceeded after {processed} vectors"
                break
            if time_budget is not None and time.perf_counter() - start > time_budget:
                metrics.completed = False
                metrics.abort_reason = f"time budget exceeded after {processed} vectors"
                break
        else:
            pairs += len(join.flush())
    finally:
        closer = getattr(join, "close", None)
        if closer is not None:  # sharded joins own worker processes
            closer()
    metrics.elapsed_seconds = time.perf_counter() - start
    metrics.pairs = pairs
    stats.elapsed_seconds = metrics.elapsed_seconds
    return metrics


def sweep(
    algorithms: Iterable[str],
    datasets: Iterable[str],
    scale: ExperimentScale,
    *,
    thetas: Iterable[float] | None = None,
    decays: Iterable[float] | None = None,
    backend: str | None = None,
) -> list[RunMetrics]:
    """Run every (algorithm, dataset, θ, λ) combination of the given grids."""
    thetas = tuple(thetas) if thetas is not None else scale.thetas
    decays = tuple(decays) if decays is not None else scale.decays
    results: list[RunMetrics] = []
    for dataset in datasets:
        get_profile(dataset)  # fail fast on typos before long runs
        vectors = corpus_for(dataset, scale.vectors_for(dataset), seed=scale.seed)
        for algorithm in algorithms:
            for threshold in thetas:
                for decay in decays:
                    best: RunMetrics | None = None
                    for _ in range(max(1, scale.repetitions)):
                        metrics = run_algorithm(
                            algorithm, vectors, threshold, decay,
                            dataset=dataset,
                            operation_budget=scale.operation_budget,
                            backend=backend,
                        )
                        if best is None or metrics.elapsed_seconds < best.elapsed_seconds:
                            best = metrics
                    results.append(best)
    return results
