"""Parameter grids and experiment configuration for the benchmark harness.

The paper sweeps the similarity threshold ``θ`` over ``[0.5, 0.99]`` and the
decay factor ``λ`` over exponentially increasing values in ``[1e-4, 1e-1]``
(Section 7).  The grids below are exactly those values; experiments can be
scaled down (fewer grid points, fewer vectors) through
:class:`ExperimentScale` so the whole suite stays runnable on a laptop with
a pure-Python implementation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

__all__ = [
    "THETA_GRID",
    "LAMBDA_GRID",
    "FRAMEWORKS",
    "INDEXES",
    "DATASETS",
    "ExperimentScale",
    "default_scale",
]

#: Similarity thresholds used throughout the evaluation (Section 7).
THETA_GRID: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9, 0.99)

#: Time-decay factors used throughout the evaluation (Section 7).
LAMBDA_GRID: tuple[float, ...] = (1e-4, 1e-3, 1e-2, 1e-1)

#: Algorithmic frameworks under study.
FRAMEWORKS: tuple[str, ...] = ("MB", "STR")

#: Indexing schemes under study (AP is omitted from the paper's evaluation).
INDEXES: tuple[str, ...] = ("INV", "L2AP", "L2")

#: Dataset profiles under study, in the paper's Table 1 order.
DATASETS: tuple[str, ...] = ("webspam", "rcv1", "blogs", "tweets")

#: Default number of vectors per profile used by the benchmark suite.  These
#: keep every experiment in the tens of seconds on a laptop while preserving
#: each dataset's role (WebSpam densest, Tweets sparsest and most numerous).
DEFAULT_VECTOR_COUNTS: dict[str, int] = {
    "webspam": 200,
    "rcv1": 500,
    "blogs": 400,
    "tweets": 1500,
}


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade benchmark fidelity for running time.

    Attributes
    ----------
    vector_counts:
        Number of vectors generated per dataset profile.
    thetas, decays:
        Grid points actually swept (subsets of the paper's grids).
    seed:
        Seed for corpus generation (one corpus per dataset per seed).
    operation_budget:
        Abort a run once its aggregate operation count exceeds this value;
        mirrors the paper's 3-hour timeout in a machine-independent way.
        ``None`` disables the budget.
    repetitions:
        How many times timed runs are repeated (the paper averages over 3).
    """

    vector_counts: dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_VECTOR_COUNTS)
    )
    thetas: tuple[float, ...] = THETA_GRID
    decays: tuple[float, ...] = LAMBDA_GRID
    seed: int = 42
    operation_budget: int | None = None
    repetitions: int = 1

    def vectors_for(self, dataset: str) -> int:
        """Vector count for a dataset profile (falls back to 500)."""
        return self.vector_counts.get(dataset, 500)


def default_scale() -> ExperimentScale:
    """The scale used by the benchmark suite.

    The environment variable ``SSSJ_BENCH_SCALE`` multiplies the per-dataset
    vector counts, so ``SSSJ_BENCH_SCALE=4 pytest benchmarks/`` runs a 4×
    larger (and roughly 16× slower) version of every experiment.
    """
    factor = float(os.environ.get("SSSJ_BENCH_SCALE", "1.0"))
    counts = {name: max(50, int(count * factor))
              for name, count in DEFAULT_VECTOR_COUNTS.items()}
    return ExperimentScale(vector_counts=counts)
