"""Near-duplicate item filtering on top of the streaming join.

The paper's second motivating application (Section 1): when an event
happens, users receive many near-copies of the same post in a short time
window; grouping or filtering them improves the experience.

:class:`DuplicateFilter` wraps a streaming join and turns the pair stream
into a per-item decision: *deliver* (the item is novel) or *suppress* (it
is a near copy of a recently delivered item).  Suppressed items are
attributed to their *canonical* item — the earliest delivered member of the
duplicate group — so callers can still show "n similar posts hidden".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.join import create_join
from repro.core.results import JoinStatistics
from repro.core.vector import SparseVector

__all__ = ["FilterDecision", "DuplicateFilter"]


@dataclass(frozen=True)
class FilterDecision:
    """Outcome of processing one item.

    Attributes
    ----------
    item_id:
        Identifier of the processed item.
    delivered:
        True when the item is novel and should be shown.
    canonical_id:
        For suppressed items, the id of the earlier item this one duplicates
        (the earliest delivered member of its duplicate group); for
        delivered items, the item itself.
    similarity:
        Similarity to the closest earlier item that caused suppression
        (0.0 for delivered items).
    duplicates_so_far:
        How many items have been suppressed under the same canonical item,
        including this one when it is suppressed.
    """

    item_id: int
    delivered: bool
    canonical_id: int
    similarity: float = 0.0
    duplicates_so_far: int = 0


@dataclass
class _Group:
    canonical_id: int
    suppressed: int = 0
    member_ids: set[int] = field(default_factory=set)


class DuplicateFilter:
    """Suppress items that are near copies of recently seen ones.

    Parameters
    ----------
    threshold, decay:
        Parameters of the underlying join: an item is a duplicate when its
        time-dependent similarity to an earlier item reaches ``threshold``.
    algorithm:
        Join algorithm (default ``"STR-L2"``).
    """

    def __init__(self, threshold: float, decay: float, *,
                 algorithm: str = "STR-L2") -> None:
        self._join = create_join(algorithm, threshold, decay)
        self._groups: dict[int, _Group] = {}      # canonical id -> group
        self._canonical_of: dict[int, int] = {}   # any member id -> canonical id
        self.delivered_count = 0
        self.suppressed_count = 0

    # -- processing ----------------------------------------------------------------

    def process(self, vector: SparseVector) -> FilterDecision:
        """Classify one item as novel or duplicate and update the state."""
        pairs = self._join.process(vector)
        if not pairs:
            self.delivered_count += 1
            group = _Group(canonical_id=vector.vector_id,
                           member_ids={vector.vector_id})
            self._groups[vector.vector_id] = group
            self._canonical_of[vector.vector_id] = vector.vector_id
            return FilterDecision(item_id=vector.vector_id, delivered=True,
                                  canonical_id=vector.vector_id)

        best = max(pairs, key=lambda pair: pair.similarity)
        earlier_id = best.id_a if best.id_b == vector.vector_id else best.id_b
        canonical_id = self._canonical_of.get(earlier_id, earlier_id)
        group = self._groups.get(canonical_id)
        if group is None:
            group = _Group(canonical_id=canonical_id, member_ids={canonical_id})
            self._groups[canonical_id] = group
        group.suppressed += 1
        group.member_ids.add(vector.vector_id)
        self._canonical_of[vector.vector_id] = canonical_id
        self.suppressed_count += 1
        return FilterDecision(
            item_id=vector.vector_id,
            delivered=False,
            canonical_id=canonical_id,
            similarity=best.similarity,
            duplicates_so_far=group.suppressed,
        )

    def run(self, stream) -> list[FilterDecision]:
        """Process a whole stream and return the per-item decisions."""
        return [self.process(vector) for vector in stream]

    # -- queries --------------------------------------------------------------------

    @property
    def join_statistics(self) -> JoinStatistics:
        """Operation counters of the underlying join."""
        return self._join.stats

    @property
    def suppression_rate(self) -> float:
        """Fraction of processed items that were suppressed."""
        total = self.delivered_count + self.suppressed_count
        return self.suppressed_count / total if total else 0.0

    def group_size(self, canonical_id: int) -> int:
        """Number of items (delivered + suppressed) attributed to a canonical item."""
        group = self._groups.get(canonical_id)
        return len(group.member_ids) if group else 0

    def canonical_for(self, item_id: int) -> int | None:
        """Canonical item an id was attributed to, if it has been seen."""
        return self._canonical_of.get(item_id)
