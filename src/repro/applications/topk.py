"""Continuous top-k monitoring of the most similar pairs.

A small utility on top of the join: instead of (or in addition to)
reporting every pair above the threshold, keep only the ``k`` most similar
pairs seen so far.  Useful for dashboards ("most duplicated stories right
now") and for choosing a threshold empirically: run with a low ``θ`` once,
inspect the top of the distribution, then pick the production threshold.
"""

from __future__ import annotations

from repro.core.join import create_join
from repro.core.results import SimilarPair, TopKCollector
from repro.core.vector import SparseVector

__all__ = ["TopKPairsMonitor"]


class TopKPairsMonitor:
    """Tracks the ``k`` highest-similarity pairs produced by a streaming join.

    Parameters
    ----------
    k:
        How many pairs to retain.
    threshold, decay:
        Parameters of the underlying join.  ``threshold`` acts as a floor:
        only pairs at or above it can enter the top-k at all.
    algorithm:
        Join algorithm (default ``"STR-L2"``).
    """

    def __init__(self, k: int, threshold: float, decay: float, *,
                 algorithm: str = "STR-L2") -> None:
        self._join = create_join(algorithm, threshold, decay)
        self._collector = TopKCollector(k)
        self._pairs_seen = 0

    @property
    def k(self) -> int:
        return self._collector.k

    @property
    def pairs_seen(self) -> int:
        """Total number of above-threshold pairs observed so far."""
        return self._pairs_seen

    def process(self, vector: SparseVector) -> list[SimilarPair]:
        """Feed one vector; return the pairs it produced (regardless of rank)."""
        pairs = self._join.process(vector)
        for pair in pairs:
            self._collector.collect(pair)
        self._pairs_seen += len(pairs)
        return pairs

    def run(self, stream) -> list[SimilarPair]:
        """Consume a whole stream and return the final top-k pairs."""
        for vector in stream:
            self.process(vector)
        return self.top()

    def top(self) -> list[SimilarPair]:
        """The current top-k pairs, most similar first."""
        return self._collector.pairs

    def minimum_retained_similarity(self) -> float:
        """Similarity of the weakest retained pair (0.0 while fewer than k)."""
        pairs = self.top()
        if len(pairs) < self.k:
            return 0.0
        return pairs[-1].similarity
