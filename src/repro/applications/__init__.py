"""Application layer built on the streaming similarity self-join.

The paper motivates the SSSJ problem with two concrete applications
(Section 1): trend detection and near-duplicate item filtering.  This
package turns both into reusable components on top of the join:

* :class:`~repro.applications.trends.TrendDetector` — groups similar,
  temporally close items into clusters and surfaces the currently trending
  ones,
* :class:`~repro.applications.dedup.DuplicateFilter` — decides, per item,
  whether it is a near copy of something seen recently,
* :class:`~repro.applications.topk.TopKPairsMonitor` — continuously tracks
  the k most similar pairs seen so far.
"""

from repro.applications.dedup import DuplicateFilter, FilterDecision
from repro.applications.topk import TopKPairsMonitor
from repro.applications.trends import Trend, TrendDetector

__all__ = [
    "TrendDetector",
    "Trend",
    "DuplicateFilter",
    "FilterDecision",
    "TopKPairsMonitor",
]
