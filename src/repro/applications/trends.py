"""Trend detection on top of the streaming similarity self-join.

The paper's first motivating application (Section 1): *"identify a set of
posts, whose frequency increases, and which share a certain fraction of
hashtags or terms"*.  The :class:`TrendDetector` consumes a stream of
vectors, feeds them to a streaming join, and maintains clusters of similar
items with a union-find structure.  Clusters are scored by their recent
activity, so a "trend" is a group of mutually similar items that keeps
growing.

Old clusters are forgotten once their newest member falls behind the join's
time horizon — the same forgetting principle the join itself relies on —
so the detector's state stays bounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.join import create_join
from repro.core.results import SimilarPair
from repro.core.vector import SparseVector

__all__ = ["Trend", "TrendDetector"]


class _UnionFind:
    """Union-find with path compression over integer item ids."""

    __slots__ = ("_parent",)

    def __init__(self) -> None:
        self._parent: dict[int, int] = {}

    def find(self, item: int) -> int:
        parent = self._parent.setdefault(item, item)
        while parent != item:
            grandparent = self._parent[parent]
            self._parent[item] = grandparent
            item, parent = parent, grandparent
        return item

    def union(self, a: int, b: int) -> int:
        """Merge the clusters of ``a`` and ``b``; return the surviving root."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a
        return root_a

    def known(self, item: int) -> bool:
        return item in self._parent


@dataclass
class Trend:
    """A cluster of mutually similar, temporally close items."""

    root: int
    members: set[int] = field(default_factory=set)
    first_seen: float = 0.0
    last_seen: float = 0.0
    pair_count: int = 0

    @property
    def size(self) -> int:
        """Number of distinct items in the cluster."""
        return len(self.members)

    @property
    def duration(self) -> float:
        """Time span covered by the cluster."""
        return self.last_seen - self.first_seen


class TrendDetector:
    """Maintains clusters of similar items and reports the trending ones.

    Parameters
    ----------
    threshold, decay:
        Parameters of the underlying streaming join (``θ`` and ``λ``).
    min_size:
        Minimum number of items for a cluster to count as a trend.
    algorithm:
        Join algorithm to use (default ``"STR-L2"``, the paper's choice).
    """

    def __init__(self, threshold: float, decay: float, *, min_size: int = 3,
                 algorithm: str = "STR-L2") -> None:
        if min_size < 2:
            raise ValueError(f"min_size must be at least 2, got {min_size}")
        self.min_size = min_size
        self._join = create_join(algorithm, threshold, decay)
        self._clusters = _UnionFind()
        self._trends: dict[int, Trend] = {}
        self._item_root: dict[int, int] = {}
        self._clock = 0.0

    # -- stream consumption -------------------------------------------------------

    def process(self, vector: SparseVector) -> list[SimilarPair]:
        """Feed one item; return the similar pairs it produced."""
        self._clock = max(self._clock, vector.timestamp)
        pairs = self._join.process(vector)
        for pair in pairs:
            self._absorb(pair)
        self._expire_old_trends()
        return pairs

    def _absorb(self, pair: SimilarPair) -> None:
        root = self._clusters.union(pair.id_a, pair.id_b)
        trend = self._trends.get(root)
        merged_roots = {self._item_root.get(pair.id_a), self._item_root.get(pair.id_b)}
        merged_roots.discard(None)
        merged_roots.discard(root)
        if trend is None:
            trend = Trend(root=root, first_seen=pair.reported_at, last_seen=pair.reported_at)
            self._trends[root] = trend
        # Fold in any cluster that the union just merged under a new root.
        for old_root in merged_roots:
            old = self._trends.pop(old_root, None)
            if old is not None:
                trend.members.update(old.members)
                trend.pair_count += old.pair_count
                trend.first_seen = min(trend.first_seen, old.first_seen)
                trend.last_seen = max(trend.last_seen, old.last_seen)
        trend.members.update((pair.id_a, pair.id_b))
        trend.pair_count += 1
        trend.last_seen = max(trend.last_seen, pair.reported_at)
        trend.first_seen = min(trend.first_seen, pair.reported_at - pair.time_delta)
        for member in (pair.id_a, pair.id_b):
            self._item_root[member] = root

    def _expire_old_trends(self) -> None:
        horizon = self._join.horizon
        if horizon == float("inf"):
            return
        cutoff = self._clock - horizon
        expired = [root for root, trend in self._trends.items() if trend.last_seen < cutoff]
        for root in expired:
            trend = self._trends.pop(root)
            for member in trend.members:
                self._item_root.pop(member, None)

    # -- queries -------------------------------------------------------------------

    @property
    def join_statistics(self):
        """Operation counters of the underlying join."""
        return self._join.stats

    def active_trends(self) -> list[Trend]:
        """Current clusters with at least ``min_size`` members, biggest first."""
        trends = [trend for trend in self._trends.values() if trend.size >= self.min_size]
        return sorted(trends, key=lambda trend: (trend.size, trend.last_seen), reverse=True)

    def trend_of(self, item_id: int) -> Trend | None:
        """The trend an item currently belongs to, if any."""
        root = self._item_root.get(item_id)
        if root is None:
            return None
        return self._trends.get(root)

    def run(self, stream) -> list[Trend]:
        """Consume a whole stream and return the final list of active trends."""
        for vector in stream:
            self.process(vector)
        return self.active_trends()
