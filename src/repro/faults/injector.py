"""Runtime half of fault injection: counting sites and firing events.

A :class:`FaultInjector` wraps a parsed :class:`~repro.faults.plan.FaultPlan`
and is consulted by the components that can break:

* the multiprocess shard executor asks :meth:`worker_kill_due` before
  sending each step message (and SIGKILLs the real child on ``True``),
  and ships :meth:`worker_events_for` to each worker at spawn so
  delay/drop/self-exit faults fire inside the child itself;
* the service session asks :meth:`sink_fail_due` on each sink emit
  attempt;
* the server's request handler (or the client, whichever side carries
  the plan) asks :meth:`client_sever_due` after each ingest request.

Every event fires exactly once, at a deterministic site occurrence, so
a seeded plan reproduces the same chaos on every run.  All counters are
lock-protected — sessions, handler threads and executors share one
injector.  Fired faults and observed recoveries are appended to
:attr:`log` (list of dicts) and can be written as JSON lines via
:meth:`write_log` for the chaos-smoke CI artifact.
"""

from __future__ import annotations

import json
import threading
import time

from repro import obs
from repro.exceptions import InvalidParameterError
from repro.faults.plan import (
    WORKER_FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    parse_fault_plan,
)

__all__ = ["FaultInjector"]


def _splitmix64(state: int) -> int:
    """One splitmix64 step — a tiny, seed-stable integer mixer."""
    state = (state + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    mixed = state
    mixed = ((mixed ^ (mixed >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    mixed = ((mixed ^ (mixed >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return mixed ^ (mixed >> 31)


class _Armed:
    """One armed event instance (mutable fire flag around a FaultEvent)."""

    __slots__ = ("event", "shard", "fired")

    def __init__(self, event: FaultEvent, shard: int | None) -> None:
        self.event = event
        self.shard = shard
        self.fired = False


class FaultInjector:
    """Thread-safe occurrence counting + exactly-once firing of a plan."""

    def __init__(self, plan: "FaultPlan | str | None") -> None:
        plan = parse_fault_plan(plan)
        if plan is None:
            plan = FaultPlan(events=())
        self.plan = plan
        self._lock = threading.Lock()
        self._armed = [_Armed(event, event.shard) for event in plan.events]
        self._workers_bound: int | None = None
        self._emit_attempts = 0
        self._ingest_requests = 0
        #: Chronological record of fired faults (and recovery observations
        #: recorded by the components that healed them).
        self.log: list[dict] = []

    # -- site: shard workers ---------------------------------------------------

    def bind_workers(self, workers: int) -> None:
        """Resolve worker-fault targets against the actual shard count.

        Events that omitted ``shard=`` get a seeded pick; events naming a
        shard outside ``range(workers)`` fail fast.
        """
        with self._lock:
            self._workers_bound = workers
            for position, armed in enumerate(self._armed):
                if armed.event.kind not in WORKER_FAULT_KINDS:
                    continue
                if armed.shard is None:
                    armed.shard = _splitmix64(self.plan.seed * 1000003
                                              + position) % workers
                elif armed.shard >= workers:
                    raise InvalidParameterError(
                        f"fault {armed.event.kind!r} targets shard="
                        f"{armed.shard} but only {workers} worker(s) exist")

    def worker_kill_due(self, shard: int, step: int) -> bool:
        """Is a ``kill-worker`` due for ``shard`` at step ``step``?"""
        with self._lock:
            for armed in self._armed:
                if (not armed.fired and armed.event.kind == "kill-worker"
                        and armed.shard == shard
                        and armed.event.after == step):
                    armed.fired = True
                    self._record("kill-worker", shard=shard, step=step)
                    return True
        return False

    def worker_events_for(self, shard: int) -> list[tuple[str, int, float]]:
        """Faults the worker for ``shard`` should fire on itself.

        Returned as plain ``(kind, after_step, ms)`` tuples so they pickle
        cheaply into the child at spawn.  Only the *initial* spawn gets
        them — a respawned worker runs fault-free, which is what lets the
        recovery replay converge.
        """
        kinds = ("exit-in-append", "exit-in-scan", "drop-reply",
                 "delay-reply")
        with self._lock:
            out = []
            for armed in self._armed:
                if (armed.event.kind in kinds and armed.shard == shard
                        and not armed.fired):
                    armed.fired = True  # handed to the child; fires there
                    self._record(armed.event.kind, shard=shard,
                                 step=armed.event.after, armed=True)
                    out.append((armed.event.kind, armed.event.after,
                                armed.event.ms or 0.0))
            return out

    # -- site: sink writes -----------------------------------------------------

    def sink_fail_due(self) -> bool:
        """Count one sink emit attempt; is a ``fail-sink`` due for it?"""
        with self._lock:
            self._emit_attempts += 1
            for armed in self._armed:
                if (not armed.fired and armed.event.kind == "fail-sink"
                        and armed.event.after == self._emit_attempts):
                    armed.fired = True
                    self._record("fail-sink", attempt=self._emit_attempts)
                    return True
        return False

    # -- site: client connections ----------------------------------------------

    def client_sever_due(self) -> bool:
        """Count one ingest request; is a ``sever-client`` due for it?"""
        with self._lock:
            self._ingest_requests += 1
            for armed in self._armed:
                if (not armed.fired and armed.event.kind == "sever-client"
                        and armed.event.after == self._ingest_requests):
                    armed.fired = True
                    self._record("sever-client",
                                 request=self._ingest_requests)
                    return True
        return False

    # -- observability ---------------------------------------------------------

    def record(self, kind: str, **details) -> None:
        """Append an observation (e.g. a recovery) to the event log."""
        with self._lock:
            self._record(kind, **details)

    def _record(self, kind: str, **details) -> None:
        self.log.append({"kind": kind, "time": time.time(), **details})
        # Faults are rare by construction; count them inline.
        if obs.enabled():
            obs.get_registry().counter(
                "sssj_fault_events_total",
                "Injected-fault and recovery events by kind.",
                ("kind",)).labels(kind=kind).inc()

    @property
    def fired(self) -> list[dict]:
        """Fired-fault entries of the log (excludes recovery records)."""
        kinds = WORKER_FAULT_KINDS | {"fail-sink", "sever-client"}
        with self._lock:
            return [entry for entry in self.log if entry["kind"] in kinds]

    @property
    def pending(self) -> int:
        """Number of armed events that have not fired yet."""
        with self._lock:
            return sum(1 for armed in self._armed if not armed.fired)

    def write_log(self, path) -> None:
        """Write the event log as JSON lines (the chaos CI artifact)."""
        with self._lock:
            entries = list(self.log)
        with open(path, "w", encoding="utf-8") as handle:
            for entry in entries:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
