"""Deterministic fault injection for chaos tests and hardened production runs.

``repro.faults`` turns "what if a worker dies mid-scan?" into a seeded,
replayable experiment: a :class:`FaultPlan` (parsed from a compact spec
string — CLI ``--fault-plan`` / env ``SSSJ_FAULT_PLAN``) declares real
faults (SIGKILLed shard workers, dropped or delayed pipe replies, failed
sink writes, severed client connections) and a :class:`FaultInjector`
fires each exactly once at a deterministic site occurrence.  The faults
are *real* — processes are killed with SIGKILL, sockets are closed — so
what the chaos tests exercise is the same recovery machinery production
relies on, not mocks.

See :mod:`repro.faults.plan` for the spec grammar and
:mod:`repro.faults.injector` for the sites.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FAULT_PLAN_ENV_VAR,
    SERVICE_FAULT_KINDS,
    WORKER_FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    parse_fault_plan,
)

__all__ = [
    "FAULT_PLAN_ENV_VAR",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "SERVICE_FAULT_KINDS",
    "WORKER_FAULT_KINDS",
    "parse_fault_plan",
]
