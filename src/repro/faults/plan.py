"""Deterministic fault plans: what to break, where, and when.

A :class:`FaultPlan` is a seeded, declarative list of faults to inject
into a run — real process kills, dropped or delayed pipe replies, failed
sink writes, severed client connections.  Plans are parsed from a compact
spec string (CLI ``--fault-plan`` / env ``SSSJ_FAULT_PLAN``), mirroring
the ``--approx`` SPEC pattern: parsing is fail-fast and every malformed
spec raises :class:`~repro.exceptions.InvalidParameterError` so the CLI
can exit 2 before any work starts.

Spec grammar::

    SPEC  := EVENT (';' EVENT)*
    EVENT := KIND [':' KEY '=' VALUE (',' KEY '=' VALUE)*] | 'seed=' INT

Event kinds and their keys (``after`` counts *occurrences at the site*
— shard step messages for worker faults, sink emit attempts for
``fail-sink``, ingest requests for ``sever-client`` — and each event
fires exactly once):

``kill-worker``      ``shard`` (optional; seeded pick), ``after`` (>=1)
    SIGKILL the shard's worker process right before step ``after`` is
    sent, exercising the executor's death-detection + respawn path.
``exit-in-append``   ``shard``, ``after``
    The worker SIGKILLs *itself* after applying step ``after``'s posting
    appends but before scanning — a mid-step death with state mutated.
``exit-in-scan``     ``shard``, ``after``
    The worker SIGKILLs itself after scanning but before replying — the
    harshest spot: all step work done, reply lost.
``drop-reply``       ``shard``, ``after``
    The worker swallows the reply of step ``after`` (stays alive),
    forcing the coordinator's recv deadline to fire.
``delay-reply``      ``shard``, ``after``, ``ms`` (>0, default 1000)
    The worker sleeps ``ms`` before replying to step ``after``.
``fail-sink``        ``after``
    The ``after``-th sink emit attempt raises, exercising the session's
    bounded emit retry.
``sever-client``     ``after``
    The connection is severed after the ``after``-th ingest request is
    applied but before its reply is read/written — duplicates on resend
    must be deduplicated by sequence numbers.

Example: ``"kill-worker:shard=1,after=40;sever-client:after=3;seed=7"``.

>>> plan = parse_fault_plan("kill-worker:shard=1,after=40;seed=7")
>>> plan.seed, plan.events[0].kind, plan.events[0].after
(7, 'kill-worker', 40)
>>> parse_fault_plan(plan.spec()) == plan
True
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import InvalidParameterError

__all__ = [
    "FAULT_PLAN_ENV_VAR",
    "FaultEvent",
    "FaultPlan",
    "parse_fault_plan",
    "WORKER_FAULT_KINDS",
    "SERVICE_FAULT_KINDS",
]

FAULT_PLAN_ENV_VAR = "SSSJ_FAULT_PLAN"

#: Faults that target a shard worker process (fired by the executor or
#: inside the worker's message loop).
WORKER_FAULT_KINDS = frozenset(
    {"kill-worker", "exit-in-append", "exit-in-scan", "drop-reply",
     "delay-reply"})
#: Faults that target the service tier (sessions, sinks, connections).
SERVICE_FAULT_KINDS = frozenset({"fail-sink", "sever-client"})

_ALL_KINDS = WORKER_FAULT_KINDS | SERVICE_FAULT_KINDS
_ALLOWED_KEYS = {
    "kill-worker": {"shard", "after"},
    "exit-in-append": {"shard", "after"},
    "exit-in-scan": {"shard", "after"},
    "drop-reply": {"shard", "after"},
    "delay-reply": {"shard", "after", "ms"},
    "fail-sink": {"after"},
    "sever-client": {"after"},
}


@dataclass(frozen=True)
class FaultEvent:
    """One fault: ``kind`` fired at the ``after``-th site occurrence."""

    kind: str
    after: int = 1
    shard: int | None = None
    ms: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in _ALL_KINDS:
            raise InvalidParameterError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(_ALL_KINDS)}")
        if self.after < 1:
            raise InvalidParameterError(
                f"fault {self.kind!r}: after={self.after} must be >= 1")
        if self.shard is not None:
            if self.kind not in WORKER_FAULT_KINDS:
                raise InvalidParameterError(
                    f"fault {self.kind!r} does not take shard=")
            if self.shard < 0:
                raise InvalidParameterError(
                    f"fault {self.kind!r}: shard={self.shard} must be >= 0")
        if self.ms is not None:
            if self.kind != "delay-reply":
                raise InvalidParameterError(
                    f"fault {self.kind!r} does not take ms=")
            if not self.ms > 0:
                raise InvalidParameterError(
                    f"fault 'delay-reply': ms={self.ms} must be > 0")

    def spec(self) -> str:
        """Canonical single-event spec fragment (round-trips via parse)."""
        params = []
        if self.shard is not None:
            params.append(f"shard={self.shard}")
        params.append(f"after={self.after}")
        if self.ms is not None:
            ms = self.ms
            params.append(f"ms={int(ms) if ms == int(ms) else ms}")
        return f"{self.kind}:{','.join(params)}"


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered collection of :class:`FaultEvent`."""

    events: tuple[FaultEvent, ...]
    seed: int = 0

    @property
    def worker_events(self) -> tuple[FaultEvent, ...]:
        return tuple(event for event in self.events
                     if event.kind in WORKER_FAULT_KINDS)

    @property
    def service_events(self) -> tuple[FaultEvent, ...]:
        return tuple(event for event in self.events
                     if event.kind in SERVICE_FAULT_KINDS)

    def spec(self) -> str:
        """Canonical spec string (round-trips via :func:`parse_fault_plan`)."""
        parts = [event.spec() for event in self.events]
        if self.seed:
            parts.append(f"seed={self.seed}")
        return ";".join(parts)


def _parse_int(kind: str, key: str, raw: str, spec: str) -> int:
    try:
        return int(raw)
    except ValueError:
        raise InvalidParameterError(
            f"cannot parse {key}={raw!r} for fault {kind!r} in "
            f"{spec!r}: expected an integer") from None


def parse_fault_plan(value: "str | FaultPlan | None") -> FaultPlan | None:
    """Normalise a fault-plan specification into a :class:`FaultPlan`.

    Accepts ``None`` / the empty string (injection disabled), an existing
    plan, or a spec string (see the module docstring for the grammar).
    Malformed specs raise :class:`~repro.exceptions.InvalidParameterError`
    with a message naming the offending token — the CLI turns that into
    exit code 2 before any work starts.
    """
    if value is None:
        return None
    if isinstance(value, FaultPlan):
        return value
    text = str(value).strip()
    if not text:
        return None
    events: list[FaultEvent] = []
    seed = 0
    for token in text.split(";"):
        token = token.strip()
        if not token:
            continue
        head, _, tail = token.partition(":")
        head = head.strip().lower()
        if "=" in head:  # a bare 'seed=N' (or misplaced key) token
            key, _, raw = head.partition("=")
            if key.strip() != "seed" or tail:
                raise InvalidParameterError(
                    f"cannot parse fault event {token!r} in {value!r}; "
                    "expected 'kind[:key=value,...]' or 'seed=N'")
            seed = _parse_int("plan", "seed", raw.strip(), text)
            continue
        if head not in _ALL_KINDS:
            raise InvalidParameterError(
                f"unknown fault kind {head!r} in {value!r}; expected one "
                f"of {sorted(_ALL_KINDS)}")
        kwargs: dict = {"kind": head}
        if tail:
            for param in tail.split(","):
                param = param.strip()
                if not param:
                    continue
                key, sep, raw = param.partition("=")
                key = key.strip().lower()
                raw = raw.strip()
                if not sep or not raw:
                    raise InvalidParameterError(
                        f"cannot parse parameter {param!r} of fault "
                        f"{head!r} in {value!r}; expected 'key=value'")
                if key not in _ALLOWED_KEYS[head]:
                    raise InvalidParameterError(
                        f"fault {head!r} does not take {key!r}; allowed "
                        f"keys: {sorted(_ALLOWED_KEYS[head])}")
                if key == "ms":
                    try:
                        kwargs["ms"] = float(raw)
                    except ValueError:
                        raise InvalidParameterError(
                            f"cannot parse ms={raw!r} for fault "
                            f"'delay-reply' in {value!r}: expected a "
                            "number") from None
                else:
                    kwargs[key] = _parse_int(head, key, raw, text)
        events.append(FaultEvent(**kwargs))
    if not events:
        raise InvalidParameterError(
            f"fault plan {value!r} names no fault events")
    return FaultPlan(events=tuple(events), seed=seed)
