"""Trend detection on a micro-blog style stream (paper Section 1, example 1).

The paper motivates the streaming similarity self-join with trend detection:
instead of tracking single hashtags, find *groups of posts* that share a
large fraction of their terms and arrive close together in time.  This
example:

1. generates a tweets-like synthetic stream (sparse vectors, bursty
   arrivals, near-duplicate clusters),
2. runs the STR-L2 join to obtain similar pairs,
3. clusters the pairs with a union-find structure, and
4. reports the largest clusters per time window — the "trends".

Run with::

    python examples/trend_detection.py [--num-vectors 1500] [--threshold 0.6]
"""

from __future__ import annotations

import argparse
from collections import defaultdict

from repro import StreamingSimilarityJoin
from repro.datasets import generate_profile_corpus


class UnionFind:
    """Minimal union-find used to group similar posts into trends."""

    def __init__(self) -> None:
        self._parent: dict[int, int] = {}

    def find(self, item: int) -> int:
        parent = self._parent.setdefault(item, item)
        if parent != item:
            parent = self.find(parent)
            self._parent[item] = parent
        return parent

    def union(self, a: int, b: int) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--num-vectors", type=int, default=1500)
    parser.add_argument("--threshold", type=float, default=0.6)
    parser.add_argument("--decay", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--top", type=int, default=5, help="number of trends to show")
    args = parser.parse_args()

    posts = generate_profile_corpus("tweets", num_vectors=args.num_vectors, seed=args.seed)
    by_id = {post.vector_id: post for post in posts}

    join = StreamingSimilarityJoin(threshold=args.threshold, decay=args.decay)
    clusters = UnionFind()
    pair_count = 0
    for pair in join.run(posts):
        clusters.union(pair.id_a, pair.id_b)
        pair_count += 1

    members: dict[int, list[int]] = defaultdict(list)
    for post_id in by_id:
        if post_id in clusters._parent:
            members[clusters.find(post_id)].append(post_id)

    trends = sorted((ids for ids in members.values() if len(ids) >= 2),
                    key=len, reverse=True)

    print(f"stream of {len(posts)} posts, θ={args.threshold}, λ={args.decay}, "
          f"horizon τ={join.horizon:.1f}")
    print(f"similar pairs found: {pair_count}")
    print(f"trend clusters (>= 2 posts): {len(trends)}\n")
    for rank, ids in enumerate(trends[:args.top], start=1):
        first = min(by_id[i].timestamp for i in ids)
        last = max(by_id[i].timestamp for i in ids)
        exemplar = by_id[ids[0]]
        top_terms = sorted(exemplar, key=lambda item: item[1], reverse=True)[:5]
        terms = ", ".join(f"t{dim}" for dim, _ in top_terms)
        print(f"  trend #{rank}: {len(ids)} posts between t={first:.1f} and t={last:.1f} "
              f"(top terms: {terms})")

    print("\nindex statistics:")
    for key, value in join.stats.as_dict().items():
        print(f"  {key:24s} {value}")


if __name__ == "__main__":
    main()
