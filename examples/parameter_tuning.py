"""Choosing θ and λ with the paper's parameter-setting methodology (Section 3).

The paper suggests a simple recipe:

1. pick the similarity threshold ``θ`` as the lowest content similarity two
   *simultaneous* items may have and still be considered duplicates;
2. pick the horizon ``τ`` as the largest arrival gap at which two
   *identical* items should still be considered duplicates;
3. derive the decay rate ``λ = τ⁻¹ ln θ⁻¹``.

This example walks through the recipe for a near-duplicate-filtering use
case and then shows how the derived parameters behave on a synthetic
stream, sweeping the horizon to expose the cost/recall trade-off.

Run with::

    python examples/parameter_tuning.py
"""

from __future__ import annotations

from repro import JoinParameters, StreamingSimilarityJoin
from repro.datasets import generate_profile_corpus


def main() -> None:
    # Step 1: two posts sharing ~70% of their content are "the same story".
    content_threshold = 0.7
    # Step 2: an identical repost more than 2 hours (120 time units) later is
    # no longer clutter — it may be legitimate renewed interest.
    horizon = 120.0
    # Step 3: derive the decay rate.
    params = JoinParameters.from_horizon(content_threshold, horizon)
    print("parameter-setting methodology (paper Section 3):")
    print(f"  chosen θ        : {params.threshold}")
    print(f"  chosen τ        : {horizon}")
    print(f"  derived λ       : {params.decay:.5f}\n")

    stream = generate_profile_corpus("tweets", num_vectors=1200, seed=21)

    print(f"{'horizon τ':>12s} {'derived λ':>12s} {'pairs':>8s} "
          f"{'entries':>10s} {'peak index':>11s}")
    for tau in (15.0, 60.0, 120.0, 480.0):
        sweep_params = JoinParameters.from_horizon(content_threshold, tau)
        join = StreamingSimilarityJoin(threshold=sweep_params.threshold,
                                       decay=sweep_params.decay)
        pairs = join.run_to_list(stream)
        stats = join.stats
        print(f"{tau:12.1f} {sweep_params.decay:12.5f} {len(pairs):8d} "
              f"{stats.entries_traversed:10d} {stats.max_index_size:11d}")

    print("\nA longer horizon finds more (older) duplicate pairs but keeps "
          "more state and traverses more postings — the λ/θ trade-off the "
          "paper studies in Figures 7 and 8.")


if __name__ == "__main__":
    main()
