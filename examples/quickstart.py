"""Quickstart: find similar pairs in a small synthetic stream.

Run with::

    python examples/quickstart.py

The example builds a few hand-crafted "posts" (bags of term weights), runs
the recommended STR-L2 configuration over them and prints every pair whose
time-dependent similarity exceeds the threshold.
"""

from __future__ import annotations

from repro import SparseVector, StreamingSimilarityJoin, time_horizon

# A tiny stream of timestamped documents.  Vectors 0/1 and 3/4 are
# near-duplicates arriving close together; vector 5 repeats the content of
# vector 0 but much later, beyond the time horizon.
DOCUMENTS = [
    SparseVector(0, 0.0, {101: 3.0, 205: 1.0, 309: 2.0}),      # "breaking news A"
    SparseVector(1, 0.4, {101: 3.0, 205: 1.0, 309: 2.0}),      # retweet of A
    SparseVector(2, 1.0, {400: 1.0, 401: 2.0}),                 # unrelated post
    SparseVector(3, 5.0, {150: 2.0, 151: 2.0, 152: 1.0}),       # "breaking news B"
    SparseVector(4, 5.5, {150: 2.0, 151: 2.0, 152: 1.0, 153: 0.5}),  # near copy of B
    SparseVector(5, 80.0, {101: 3.0, 205: 1.0, 309: 2.0}),      # A again, much later
]


def main() -> None:
    threshold = 0.7     # minimum time-dependent similarity
    decay = 0.05        # forgetting rate λ

    join = StreamingSimilarityJoin(threshold=threshold, decay=decay)
    print(f"threshold θ = {threshold}, decay λ = {decay}, "
          f"horizon τ = {time_horizon(threshold, decay):.1f} time units\n")

    print("similar pairs (reported as soon as the second item arrives):")
    for pair in join.run(DOCUMENTS):
        print(f"  doc {pair.id_a} ~ doc {pair.id_b}: "
              f"sim_Δt = {pair.similarity:.3f} "
              f"(content similarity {pair.dot:.3f}, Δt = {pair.time_delta:.1f})")

    stats = join.stats
    print("\nwork done by the index:")
    print(f"  posting entries traversed : {stats.entries_traversed}")
    print(f"  candidates generated      : {stats.candidates_generated}")
    print(f"  full similarities computed: {stats.full_similarities}")
    print("\nnote: doc 5 has identical content to doc 0 but arrives after the "
          "horizon, so the pair (0, 5) is *not* reported.")


if __name__ == "__main__":
    main()
