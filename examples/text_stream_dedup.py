"""End-to-end pipeline on raw text: tokenize, vectorise, deduplicate.

The other examples work on pre-built sparse vectors; this one starts from
raw strings, the way a real feed would arrive.  It uses:

* :class:`repro.datasets.Tokenizer` / :class:`repro.datasets.TextVectorizer`
  to turn each post into a unit-normalised sparse vector (online TF-IDF),
* :class:`repro.DuplicateFilter` (built on the STR-L2 join) to decide,
  post by post, whether it is a near copy of something seen recently.

Run with::

    python examples/text_stream_dedup.py
"""

from __future__ import annotations

from repro import DuplicateFilter
from repro.datasets import TextVectorizer

# A miniature feed: (timestamp, text).  Posts 1, 2 and 4 are near copies of
# post 0; post 7 repeats post 0 much later, after the horizon has passed.
FEED = [
    (0.0, "Earthquake of magnitude 6.1 hits the coastal city overnight"),
    (0.5, "Magnitude 6.1 earthquake hits coastal city overnight, officials say"),
    (0.9, "BREAKING: earthquake (6.1) hits the coastal city overnight"),
    (1.5, "Local team wins the national championship after extra time"),
    (2.0, "Overnight earthquake of magnitude 6.1 hits coastal city - live updates"),
    (3.0, "New framework released for streaming similarity joins"),
    (4.0, "Championship celebrations continue downtown after the win"),
    (300.0, "Earthquake of magnitude 6.1 hits the coastal city overnight"),
]


def main() -> None:
    vectorizer = TextVectorizer()
    dedup = DuplicateFilter(threshold=0.6, decay=0.02)

    print("processing feed (θ=0.6, λ=0.02):\n")
    for post_id, (timestamp, text) in enumerate(FEED):
        vector = vectorizer.transform(post_id, timestamp, text)
        if vector is None:
            print(f"[t={timestamp:6.1f}] post {post_id}: empty after tokenisation, skipped")
            continue
        decision = dedup.process(vector)
        if decision.delivered:
            print(f"[t={timestamp:6.1f}] DELIVER  post {post_id}: {text[:60]}")
        else:
            print(f"[t={timestamp:6.1f}] SUPPRESS post {post_id}: near copy of post "
                  f"{decision.canonical_id} (sim={decision.similarity:.2f})")

    print(f"\ndelivered {dedup.delivered_count}, suppressed {dedup.suppressed_count} "
          f"({100 * dedup.suppression_rate:.0f}% of the feed was duplicate clutter)")
    print("note: the final repeat of the earthquake story is delivered again "
          "because it arrives after the time horizon — old items are forgotten.")


if __name__ == "__main__":
    main()
