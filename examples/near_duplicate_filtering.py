"""Near-duplicate item filtering (paper Section 1, example 2).

When an event happens, users of a micro-blogging platform receive many
near-copies of the same post in a short time span.  The paper's second
motivating application is to filter those near-copies out of the feed.

This example processes a blogs-like stream one post at a time, uses an
incremental STR-L2 join to detect whether the new post is a near-duplicate
of something seen recently, and only "delivers" posts that are not.

Run with::

    python examples/near_duplicate_filtering.py [--threshold 0.8] [--decay 0.02]
"""

from __future__ import annotations

import argparse

from repro import StreamingSimilarityJoin
from repro.datasets import generate_profile_corpus


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--num-vectors", type=int, default=1200)
    parser.add_argument("--threshold", type=float, default=0.8,
                        help="similarity above which a post counts as a duplicate")
    parser.add_argument("--decay", type=float, default=0.02,
                        help="forgetting rate: how quickly old posts stop counting")
    parser.add_argument("--seed", type=int, default=13)
    args = parser.parse_args()

    stream = generate_profile_corpus("blogs", num_vectors=args.num_vectors, seed=args.seed)

    join = StreamingSimilarityJoin(threshold=args.threshold, decay=args.decay)
    delivered = 0
    filtered = 0
    sample_suppressions: list[tuple[int, int, float]] = []

    for post in stream:
        duplicates = join.process(post)
        if duplicates:
            filtered += 1
            best = max(duplicates, key=lambda pair: pair.similarity)
            if len(sample_suppressions) < 10:
                earlier = best.id_a if best.id_b == post.vector_id else best.id_b
                sample_suppressions.append((post.vector_id, earlier, best.similarity))
        else:
            delivered += 1

    total = delivered + filtered
    print(f"processed {total} posts with θ={args.threshold}, λ={args.decay} "
          f"(horizon τ={join.horizon:.1f})")
    print(f"  delivered        : {delivered} ({100.0 * delivered / total:.1f}%)")
    print(f"  filtered as dup  : {filtered} ({100.0 * filtered / total:.1f}%)")
    print("\nsample suppressions (new post <- earlier near-copy, similarity):")
    for new_id, earlier_id, similarity in sample_suppressions:
        print(f"  post {new_id:5d} <- post {earlier_id:5d}   sim_Δt = {similarity:.3f}")

    stats = join.stats
    print("\ncost of the duplicate check per post (averages):")
    print(f"  entries traversed  : {stats.entries_traversed / total:.1f}")
    print(f"  full similarities  : {stats.full_similarities / total:.2f}")
    print(f"  peak index size    : {stats.max_index_size} postings")


if __name__ == "__main__":
    main()
