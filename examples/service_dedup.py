"""Near-duplicate detection as a long-running service session.

The other examples run a join over a finite list and exit.  This one
uses :mod:`repro.service` the way a serving process would:

* a :class:`repro.service.JoinSession` fed incrementally (micro-batched,
  bounded queue, backpressure),
* a callback sink that reacts to each duplicate pair the moment it is
  reported,
* a JSONL sink as the durable audit log,
* a mid-stream atomic checkpoint, a simulated ``kill -9``, and recovery
  that finishes the stream with exactly the pairs an uninterrupted run
  would have produced.

Run with::

    python examples/service_dedup.py [--num-vectors 400]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.core.join import streaming_self_join
from repro.datasets import generate_profile_corpus
from repro.service import CallbackSink, JoinSession, JsonlSink, SessionConfig
from repro.service.sinks import read_jsonl_pairs

THETA, DECAY = 0.6, 0.0001


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--num-vectors", type=int, default=400)
    args = parser.parse_args()

    workdir = Path(tempfile.mkdtemp(prefix="sssj-service-example-"))
    checkpoint = workdir / "dedup.ckpt"
    audit_log = workdir / "pairs.jsonl"
    vectors = generate_profile_corpus("hashtags",
                                      num_vectors=args.num_vectors, seed=7)
    half = len(vectors) // 2

    flagged = []
    config = SessionConfig(name="dedup", threshold=THETA, decay=DECAY,
                           batch_max_items=32, batch_max_delay=0.0,
                           queue_max=256, backpressure="block",
                           checkpoint_every_items=100)
    session = JoinSession(config,
                          sinks=[JsonlSink(audit_log),
                                 CallbackSink(flagged.append)],
                          checkpoint_path=checkpoint)

    print(f"streaming {half} of {len(vectors)} hashtag vectors into the "
          f"session (θ={THETA}, λ={DECAY}) ...")
    session.ingest(vectors[:half])
    session.checkpoint_now()
    print(f"checkpointed at {session.processed} vectors, "
          f"{session.pairs_emitted} duplicate pairs so far")

    # Crash. Everything after the checkpoint is lost (here: nothing).
    session.kill()
    print("session killed (simulated kill -9)")

    resumed = JoinSession.resume(checkpoint,
                                 extra_sinks=[CallbackSink(flagged.append)])
    print(f"recovered from {checkpoint.name}: covers {resumed.processed} "
          "vectors; feeding the rest ...")
    resumed.ingest(vectors[resumed.processed:])
    summary = resumed.drain()

    stats = resumed.stats()
    print(f"\ndrained: {summary['processed']} vectors, "
          f"{summary['pairs_emitted']} pairs in the audit log")
    print("ingest latency p50/p95/p99: "
          f"{stats['latency']['p50_ms']:.2f}/"
          f"{stats['latency']['p95_ms']:.2f}/"
          f"{stats['latency']['p99_ms']:.2f} ms")

    expected = list(streaming_self_join(vectors, THETA, DECAY))
    audited = read_jsonl_pairs(audit_log)
    assert audited == expected, "service output diverged from the direct join"
    print(f"audit log identical to an uninterrupted run "
          f"({len(expected)} pairs) — recovery lost nothing, duplicated "
          "nothing")
    for pair in audited[:5]:
        print(f"  duplicate: {pair.id_a} ~ {pair.id_b} "
              f"sim={pair.similarity:.3f} Δt={pair.time_delta:.1f}")
    resumed.close()


if __name__ == "__main__":
    main()
