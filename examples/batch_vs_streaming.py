"""Compare the MiniBatch and Streaming frameworks on the same stream.

The paper's first experimental question (Q1) is which framework performs
better.  This example runs MB and STR with the same index over the same
synthetic stream and compares:

* the pairs they report (always identical — both are exact),
* when they report them (STR reports immediately, MB at window boundaries),
* how much work they do (index entries traversed, full similarities).

Run with::

    python examples/batch_vs_streaming.py [--profile rcv1] [--index L2]
"""

from __future__ import annotations

import argparse
import time

from repro import create_join
from repro.datasets import generate_profile_corpus


def run(algorithm: str, stream, threshold: float, decay: float):
    join = create_join(algorithm, threshold, decay)
    started = time.perf_counter()
    pairs = join.run_to_list(stream)
    elapsed = time.perf_counter() - started
    return join, pairs, elapsed


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="rcv1",
                        choices=["webspam", "rcv1", "blogs", "tweets"])
    parser.add_argument("--index", default="L2", choices=["INV", "L2AP", "L2"])
    parser.add_argument("--num-vectors", type=int, default=600)
    parser.add_argument("--threshold", type=float, default=0.6)
    parser.add_argument("--decay", type=float, default=0.01)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    stream = generate_profile_corpus(args.profile, num_vectors=args.num_vectors,
                                     seed=args.seed)
    by_id = {vector.vector_id: vector for vector in stream}

    str_join, str_pairs, str_time = run(f"STR-{args.index}", stream,
                                        args.threshold, args.decay)
    mb_join, mb_pairs, mb_time = run(f"MB-{args.index}", stream,
                                     args.threshold, args.decay)

    assert {p.key for p in str_pairs} == {p.key for p in mb_pairs}, \
        "both frameworks are exact, so their pair sets must be identical"

    def report_delay(pairs):
        delays = []
        for pair in pairs:
            later = max(by_id[pair.id_a].timestamp, by_id[pair.id_b].timestamp)
            delays.append(pair.reported_at - later)
        return sum(delays) / len(delays) if delays else 0.0

    print(f"profile={args.profile}, n={len(stream)}, index={args.index}, "
          f"θ={args.threshold}, λ={args.decay} (τ={str_join.horizon:.1f})\n")
    header = f"{'':28s}{'STR':>14s}{'MB':>14s}"
    print(header)
    print("-" * len(header))
    rows = [
        ("similar pairs", len(str_pairs), len(mb_pairs)),
        ("wall-clock seconds", round(str_time, 3), round(mb_time, 3)),
        ("entries traversed", str_join.stats.entries_traversed,
         mb_join.stats.entries_traversed),
        ("full similarities", str_join.stats.full_similarities,
         mb_join.stats.full_similarities),
        ("index rebuilds", str_join.stats.index_rebuilds,
         mb_join.stats.index_rebuilds),
        ("mean reporting delay", round(report_delay(str_pairs), 3),
         round(report_delay(mb_pairs), 3)),
    ]
    for label, str_value, mb_value in rows:
        print(f"{label:28s}{str_value!s:>14s}{mb_value!s:>14s}")

    print("\nSTR reports each pair the moment its second member arrives; MB "
          "defers reporting to window boundaries, which is visible in the "
          "mean reporting delay.")


if __name__ == "__main__":
    main()
